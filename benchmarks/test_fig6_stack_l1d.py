"""Fig. 6 — IPC vs RB stack size (a) and L1D size (b).

Paper shape: RB_4 loses ~18%, RB_16/RB_32 gain ~20/25%; quadrupling the
L1D gains far less than doubling the stack (the motivation asymmetry).
"""

from benchmarks.conftest import report
from repro.experiments import fig6_stack_l1d as fig6


def test_fig6(benchmark, cache):
    result = benchmark.pedantic(fig6.run, args=(cache,), rounds=1, iterations=1)
    report("Fig. 6: stack size and L1D size sweeps", fig6.render(result))

    stack = result.stack_sweep
    assert stack["RB_4"] < 0.95
    assert stack["RB_16"] > 1.05
    assert stack["RB_32"] >= stack["RB_16"]

    l1d = result.l1d_sweep
    assert l1d["x0.25"] < 1.0 < l1d["x4.0"]
    assert l1d["x0.25"] <= l1d["x0.5"] <= 1.0 <= l1d["x2.0"] <= l1d["x4.0"] + 0.01

    # The paper's asymmetry: +8 stack entries beat +3x L1D capacity.
    stack_gain = stack["RB_16"] - 1.0
    l1d_gain = l1d["x4.0"] - 1.0
    assert stack_gain > l1d_gain
