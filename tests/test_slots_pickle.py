"""Slotted hot-path classes must survive pickling.

The perf work moved several per-step record types from dataclasses to
``__slots__`` classes (no ``__dict__``, no per-instance dict allocation).
The runtime result store and campaign executor pickle workloads across
process boundaries, so every one of these must round-trip — including
through the oldest protocol the suite supports.
"""

import pickle

import pytest

from repro.gpu.warp import Warp
from repro.stack.ops import MemoryOp, MemSpace, OpKind, StackActivity
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def _roundtrip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol=protocol))


PROTOCOLS = [2, pickle.HIGHEST_PROTOCOL]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_step_roundtrip(protocol):
    step = Step(
        address=0x1000_0040, size_bytes=80, kind=NodeKind.INTERNAL,
        tests=6, pushes=[0x1000_0080, 0x1000_00C0], popped=False,
    )
    clone = _roundtrip(step, protocol)
    assert clone == step
    assert clone.pushes == step.pushes


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_ray_trace_roundtrip(protocol):
    trace = RayTrace(ray_id=7, pixel=3, kind=RayKind.SHADOW)
    trace.steps.append(
        Step(address=0x1000_0000, size_bytes=80, kind=NodeKind.LEAF,
             tests=2, pushes=[], popped=True)
    )
    trace.hit_prim = 12
    trace.hit_t = 3.5
    clone = _roundtrip(trace, protocol)
    assert clone == trace
    assert clone.hit and clone.step_count == 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_warp_roundtrip(protocol):
    traces = [RayTrace(ray_id=i, pixel=i, kind=RayKind.PRIMARY) for i in range(3)]
    for trace in traces:
        trace.steps.append(
            Step(address=0x1000_0000, size_bytes=80, kind=NodeKind.INTERNAL,
                 tests=4, pushes=[], popped=False)
        )
    warp = Warp(warp_id=5, traces=traces)
    warp.cursors = [1, 0, 0]
    warp.ready_time = 42
    clone = _roundtrip(warp, protocol)
    assert clone.warp_id == warp.warp_id
    assert clone.cursors == warp.cursors
    assert clone.ready_time == warp.ready_time
    assert clone.traces == warp.traces
    assert clone.active_lanes() == warp.active_lanes()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_memory_op_roundtrip(protocol):
    op = MemoryOp(MemSpace.GLOBAL, OpKind.STORE, 0x8000_0010, size_bytes=8)
    clone = _roundtrip(op, protocol)
    assert clone == op
    assert hash(clone) == hash(op)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_stack_activity_roundtrip(protocol):
    activity = StackActivity(
        ops=[MemoryOp(MemSpace.SHARED, OpKind.LOAD, 0x40)],
        extra_cycles=3,
    )
    clone = _roundtrip(activity, protocol)
    assert clone == activity
    assert clone.merge(clone).ops == activity.ops + activity.ops


def test_slots_reject_arbitrary_attributes():
    trace = RayTrace(ray_id=0, pixel=0, kind=RayKind.PRIMARY)
    with pytest.raises(AttributeError):
        trace.scratch = 1
    op = MemoryOp(MemSpace.SHARED, OpKind.LOAD, 0)
    with pytest.raises(AttributeError):
        op.scratch = 1
