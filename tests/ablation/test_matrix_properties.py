"""Property-based run-matrix guarantees (hypothesis).

The four invariants the campaign stack leans on:

* run IDs are content-derived — insertion order of the knob dict (and
  of the declaring ``fixed``/``ranges`` dicts) never changes them;
* a matrix never contains two runs with the same ID (no duplicate
  configurations);
* every surviving run resolves to a *valid* ``GPUConfig`` whose fields
  match the knob assignment, and every rejected combination is
  accounted for in ``skipped`` (valid + skipped = the declared size);
* the matrix is a subset of the declared space: every run's knob
  values come verbatim from ``fixed`` or the respective range.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.ablation import (
    KnobSpace,
    generate_matrix,
    knob_registry,
    run_id,
)
from repro.errors import AblationError
from repro.gpu.config import GPUConfig

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

#: Knobs the generator draws ranges from, with their example pools.
_POOL = {
    name: list(knob.examples)
    for name, knob in knob_registry().items()
    if knob.examples
}


def knob_assignments():
    """A resolved knob assignment drawn from the registry examples."""
    return st.dictionaries(
        st.sampled_from(sorted(_POOL)),
        st.none(),
        min_size=1,
        max_size=5,
    ).flatmap(
        lambda keys: st.fixed_dictionaries(
            {name: st.sampled_from(_POOL[name]) for name in keys}
        )
    )


def knob_spaces():
    """A small valid KnobSpace over the registry examples."""

    def build(names_and_seed):
        names, seed = names_and_seed
        range_names = names[: max(1, len(names) - 1)]
        fixed_names = names[len(range_names):]
        ranges = {}
        for offset, name in enumerate(range_names):
            pool = _POOL[name]
            take = 1 + (seed + offset) % len(pool)
            ranges[name] = pool[:take]
        fixed = {name: _POOL[name][seed % len(_POOL[name])]
                 for name in fixed_names}
        return KnobSpace(name="prop", fixed=fixed, ranges=ranges)

    return st.tuples(
        st.lists(st.sampled_from(sorted(_POOL)), min_size=1, max_size=4,
                 unique=True),
        st.integers(min_value=0, max_value=7),
    ).map(build)


def expand(space):
    """Expand, discarding the rare draw whose every combination is
    structurally invalid (generate_matrix refuses empty matrices)."""
    try:
        return generate_matrix(space)
    except AblationError:
        assume(False)


@SETTINGS
@given(knobs=knob_assignments(), seed=st.randoms(use_true_random=False))
def test_run_id_invariant_under_key_reordering(knobs, seed):
    names = list(knobs)
    seed.shuffle(names)
    reordered = {name: knobs[name] for name in names}
    assert run_id(reordered) == run_id(knobs)


@SETTINGS
@given(space=knob_spaces())
def test_matrix_has_no_duplicate_runs(space):
    matrix = expand(space)
    ids = [run.id for run in matrix.runs]
    assert len(ids) == len(set(ids))
    assignments = [
        tuple(sorted(run.knobs.items())) for run in matrix.runs
    ]
    assert len(assignments) == len(set(assignments))


@SETTINGS
@given(space=knob_spaces())
def test_every_run_is_a_valid_config_and_all_cells_accounted(space):
    matrix = expand(space)
    assert len(matrix.runs) + len(matrix.skipped) == space.size
    registry = knob_registry()
    for run in matrix.runs:
        assert isinstance(run.config, GPUConfig)
        for name in sorted(run.knobs):
            knob = registry[name]
            knob.validate(run.knobs[name])
            if knob.config_field is not None:
                assert getattr(run.config, knob.config_field) == run.knobs[name]
            else:
                assert run.strategy == run.knobs[name]


@SETTINGS
@given(space=knob_spaces())
def test_matrix_is_subset_of_declared_space(space):
    matrix = expand(space)
    for run in matrix.runs:
        assert sorted(run.knobs) == sorted(
            list(space.fixed) + space.range_names
        )
        for name in sorted(space.fixed):
            assert run.knobs[name] == space.fixed[name]
        for name in space.range_names:
            assert run.knobs[name] in space.ranges[name]
    # Skipped combinations also came from the declared space.
    for knobs, reason in matrix.skipped:
        assert reason
        for name in space.range_names:
            assert knobs[name] in space.ranges[name]


@SETTINGS
@given(space=knob_spaces())
def test_matrix_generation_is_deterministic(space):
    first = expand(space)
    second = expand(space)
    assert [run.id for run in first.runs] == [run.id for run in second.runs]
    assert first.skipped == second.skipped
