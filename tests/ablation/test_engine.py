"""Engine tests: execution paths, determinism, persistence, dedup."""

import json

import pytest

from repro.ablation import (
    AblationReport,
    KnobSpace,
    REPORT_FILENAME,
    execute_matrix,
    generate_matrix,
    load_report,
    matrix_jobs,
    render_json,
    run_space,
    write_report,
)
from repro.errors import AblationError
from repro.runtime.executor import ExecutionPolicy
from repro.runtime.store import ResultStore
from repro.workloads.params import WorkloadParams

TINY = WorkloadParams(width=6, height=6, spp=1, max_bounces=2,
                      complex_width=6, complex_height=6, complex_spp=1)

SPACE = KnobSpace(
    name="engine-test",
    fixed={"rb_stack_entries": 8},
    ranges={"sh_stack_entries": [0, 8]},
    scenes=("WKND", "BUNNY"),
)


class StoreCache:
    """Minimal store/policy/metrics triple (what runtime_cache builds)."""

    def __init__(self, root):
        self.store = ResultStore(root)
        self.policy = ExecutionPolicy(workers=1)
        self.metrics = None


def test_matrix_jobs_are_scene_major_and_content_addressed():
    matrix = generate_matrix(SPACE)
    jobs = matrix_jobs(matrix, params=TINY)
    assert len(jobs) == 4
    assert [job.scene for job in jobs] == [
        "WKND", "WKND", "BUNNY", "BUNNY",
    ]
    assert len({job.key() for job in jobs}) == 4
    assert all(not job.guard for job in jobs)
    guarded = matrix_jobs(matrix, params=TINY, guard=True)
    assert all(job.guard for job in guarded)


def test_run_space_serial_report_shape():
    report = run_space(SPACE, params=TINY)
    assert len(report.runs) == 2
    assert report.importance_ranking() == ["sh_stack_entries"]
    for spec_id in report.run_ids:
        per_scene = report.runs[spec_id]["per_scene"]
        assert sorted(per_scene) == ["BUNNY", "WKND"]
        for cell in per_scene.values():
            assert cell["ipc"] > 0
            assert cell["cycles"] > 0
    assert report.pareto  # never empty: the cheapest point always survives
    assert set(report.speedups) == set(report.run_ids)


def test_reports_are_bit_identical_across_runs_and_pool():
    serial = run_space(SPACE, params=TINY)
    again = run_space(SPACE, params=TINY)
    assert render_json(serial) == render_json(again)


def test_pool_path_matches_serial_and_dedups(tmp_path):
    serial = run_space(SPACE, params=TINY)
    cache = StoreCache(tmp_path / "store")
    pooled = run_space(SPACE, params=TINY, cache=cache)
    assert render_json(pooled) == render_json(serial)
    # Every cell landed in the store; a re-run is served entirely from it.
    assert len(cache.store) == 4
    rerun = run_space(SPACE, params=TINY, cache=StoreCache(tmp_path / "store"))
    assert render_json(rerun) == render_json(serial)
    assert len(cache.store) == 4


def test_guarded_run_matches_unguarded_metrics():
    plain = run_space(SPACE, params=TINY)
    guarded = run_space(SPACE, params=TINY, guard=True)
    assert guarded.guard and not plain.guard
    assert guarded.per_scene_ipc() == plain.per_scene_ipc()


def test_write_then_load_round_trip(tmp_path):
    report = run_space(SPACE, params=TINY)
    path = write_report(report, tmp_path / "run")
    assert path.name == REPORT_FILENAME
    loaded = load_report(tmp_path / "run")
    assert loaded.to_dict() == report.to_dict()
    assert render_json(loaded) == render_json(report)
    # The file itself is canonical: rewriting is byte-identical.
    before = path.read_bytes()
    write_report(loaded, tmp_path / "run")
    assert path.read_bytes() == before


def test_load_report_missing_directory(tmp_path):
    with pytest.raises(AblationError, match="no such ablation run"):
        load_report(tmp_path / "missing")


def test_load_report_missing_file(tmp_path):
    (tmp_path / "empty").mkdir()
    with pytest.raises(AblationError, match="not an ablation run"):
        load_report(tmp_path / "empty")


def test_load_report_malformed_json(tmp_path):
    run_dir = tmp_path / "bad"
    run_dir.mkdir()
    (run_dir / REPORT_FILENAME).write_text("{broken")
    with pytest.raises(AblationError, match="malformed"):
        load_report(run_dir)


def test_from_dict_rejects_wrong_schema():
    report = run_space(SPACE, params=TINY)
    payload = report.to_dict()
    payload["schema"] = 99
    with pytest.raises(AblationError, match="schema"):
        AblationReport.from_dict(payload)


def test_from_dict_rejects_non_reports():
    with pytest.raises(AblationError, match="not an ablation report"):
        AblationReport.from_dict({"hello": "world"})


def test_executor_mismatch_detected():
    matrix = generate_matrix(SPACE)
    from repro.ablation.engine import _assemble

    with pytest.raises(AblationError, match="results for"):
        _assemble(matrix, TINY, False, [])


def test_report_json_has_no_wall_clock_fields():
    report = run_space(SPACE, params=TINY)
    blob = json.dumps(report.to_dict())
    for forbidden in ("time", "date", "host"):
        assert forbidden not in blob.lower()
