"""Importance and Pareto analysis on synthetic IPC data."""

import pytest

from repro.ablation import (
    FULL_STACK_PROXY_ENTRIES,
    KnobSpace,
    ParetoPoint,
    corner_assignment,
    pareto_frontier,
    pareto_points,
    generate_matrix,
    rank_importance,
    run_id,
    speedups_vs_reference,
    stack_sram_bytes,
)
from repro.errors import AblationError
from repro.gpu.config import GPUConfig

SPACE = KnobSpace(
    name="synth",
    fixed={"rb_stack_entries": 8},
    ranges={
        "sh_stack_entries": [0, 8],
        "skewed_bank_access": [False, True],
    },
)


def synthetic_ipc(sh_gain=1.30, sk_gain=1.10, synergy=1.0):
    """Per-run, per-scene IPC with known multiplicative knob effects."""
    data = {}
    for sh in (0, 8):
        for sk in (False, True):
            ipc = 1.0
            if sh:
                ipc *= sh_gain
            if sk:
                ipc *= sk_gain
            if sh and sk:
                ipc *= synergy
            knobs = {"rb_stack_entries": 8, "sh_stack_entries": sh,
                     "skewed_bank_access": sk}
            # Two scenes at different absolute scale; ratios identical.
            data[run_id(knobs)] = {"A": ipc, "B": 2.0 * ipc}
    return data


def test_corner_assignment_follows_range_convention():
    ref = corner_assignment(SPACE, full=False)
    full = corner_assignment(SPACE, full=True)
    assert ref == {"rb_stack_entries": 8, "sh_stack_entries": 0,
                   "skewed_bank_access": False}
    assert full == {"rb_stack_entries": 8, "sh_stack_entries": 8,
                    "skewed_bank_access": True}


def test_rank_importance_recovers_known_effects():
    ranking = rank_importance(SPACE, synthetic_ipc())
    assert [imp.knob for imp in ranking] == [
        "sh_stack_entries", "skewed_bank_access",
    ]
    sh, sk = ranking
    assert sh.loo_delta == pytest.approx(0.30)
    assert sh.oat_delta == pytest.approx(0.30)
    assert sk.loo_delta == pytest.approx(0.10)
    assert sk.oat_delta == pytest.approx(0.10)
    assert (sh.off_value, sh.on_value) == (0, 8)
    assert (sk.off_value, sk.on_value) == (False, True)


def test_rank_importance_separates_loo_from_oat_under_synergy():
    ranking = rank_importance(SPACE, synthetic_ipc(synergy=1.05))
    sh = next(imp for imp in ranking if imp.knob == "sh_stack_entries")
    # Removing SH from the full corner also forfeits the synergy ...
    assert sh.loo_delta == pytest.approx(0.30 * 1.05 + 0.05, rel=1e-6)
    # ... while adding SH alone does not include it.
    assert sh.oat_delta == pytest.approx(0.30)


def test_rank_importance_ties_break_by_knob_name():
    ranking = rank_importance(SPACE, synthetic_ipc(sh_gain=1.2, sk_gain=1.2))
    assert [imp.knob for imp in ranking] == [
        "sh_stack_entries", "skewed_bank_access",
    ]


def test_rank_importance_missing_corner_raises():
    data = synthetic_ipc()
    data.pop(run_id(corner_assignment(SPACE, full=True)))
    with pytest.raises(AblationError, match="not in the collected results"):
        rank_importance(SPACE, data)


def test_speedups_normalize_per_scene_then_geomean():
    speedups = speedups_vs_reference(SPACE, synthetic_ipc())
    full_id = run_id(corner_assignment(SPACE, full=True))
    ref_id = run_id(corner_assignment(SPACE, full=False))
    assert speedups[ref_id] == pytest.approx(1.0)
    assert speedups[full_id] == pytest.approx(1.30 * 1.10)


def test_speedups_missing_reference_raises():
    data = synthetic_ipc()
    data.pop(run_id(corner_assignment(SPACE, full=False)))
    with pytest.raises(AblationError, match="reference corner"):
        speedups_vs_reference(SPACE, data)


def test_pareto_frontier_keeps_only_strict_improvements():
    points = [
        ParetoPoint("a", "A", 100, 1.00),
        ParetoPoint("b", "B", 200, 1.20),   # dominated by d (cheaper, faster)
        ParetoPoint("c", "C", 150, 0.90),   # dominated by a
        ParetoPoint("d", "D", 150, 1.25),
        ParetoPoint("e", "E", 300, 1.25),   # ties d's speedup at higher cost
    ]
    frontier = pareto_frontier(points)
    assert [p.run_id for p in frontier] == ["a", "d"]


def test_pareto_frontier_equal_cost_keeps_single_best():
    points = [
        ParetoPoint("x", "X", 100, 1.10),
        ParetoPoint("y", "Y", 100, 1.30),
        ParetoPoint("z", "Z", 100, 1.30),
    ]
    frontier = pareto_frontier(points)
    assert [p.run_id for p in frontier] == ["y"]


def test_pareto_points_requires_speedups_for_every_run():
    matrix = generate_matrix(SPACE)
    with pytest.raises(AblationError, match="no collected speedup"):
        pareto_points(matrix, {})


def test_stack_sram_bytes_scales_with_rb_entries():
    small = stack_sram_bytes(GPUConfig(rb_stack_entries=4, sh_stack_entries=0))
    large = stack_sram_bytes(GPUConfig(rb_stack_entries=8, sh_stack_entries=0))
    assert large == 2 * small


def test_stack_sram_bytes_counts_sh_carveout_and_fields():
    rb_only = GPUConfig(rb_stack_entries=8, sh_stack_entries=0)
    with_sh = GPUConfig(rb_stack_entries=8, sh_stack_entries=8)
    extra = stack_sram_bytes(with_sh) - stack_sram_bytes(rb_only)
    assert extra > with_sh.shared_memory_bytes - rb_only.shared_memory_bytes


def test_stack_sram_bytes_full_rb_uses_proxy_depth():
    full = stack_sram_bytes(GPUConfig(rb_stack_entries=None,
                                      sh_stack_entries=0))
    per_entry = stack_sram_bytes(
        GPUConfig(rb_stack_entries=1, sh_stack_entries=0)
    )
    assert full == FULL_STACK_PROXY_ENTRIES * per_entry
