"""Golden regression: the pinned end-to-end ablation report.

``golden_report.json`` is the canonical report of the 3-knob mechanism
space (SH tier x skewing x intra-warp realloc on an RB_8 base) over
PARTY + SPNZA at half resolution — scenes and scale chosen so every
mechanism produces a nonzero, strictly ordered attribution
(sh_stack_entries > intra_warp_realloc > skewed_bank_access).

The whole pipeline is deterministic, so the regenerated report must
match the committed payload *byte for byte* — any drift in tracing,
timing, energy, importance math, Pareto selection or JSON
canonicalization fails here.  The same equality must hold under the
integrity guard and through the simulation service.
"""

import asyncio
import json
import threading
from pathlib import Path

import pytest

from repro.ablation import (
    AblationReport,
    KnobSpace,
    execute_matrix,
    generate_matrix,
    render_json,
    run_space,
)
from repro.workloads.params import WorkloadParams

GOLDEN_PATH = Path(__file__).parent / "golden_report.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def golden_space() -> KnobSpace:
    return KnobSpace.from_dict(GOLDEN["space"])


def golden_params() -> WorkloadParams:
    return WorkloadParams(**GOLDEN["params"])


@pytest.fixture(scope="module")
def regenerated() -> AblationReport:
    return run_space(golden_space(), params=golden_params())


def test_report_matches_golden_byte_for_byte(regenerated):
    payload = json.dumps(regenerated.to_dict(), sort_keys=True, indent=2)
    assert payload + "\n" == GOLDEN_PATH.read_text()


def test_importance_ranking_is_pinned(regenerated):
    assert regenerated.importance_ranking() == [
        "sh_stack_entries", "intra_warp_realloc", "skewed_bank_access",
    ]
    # Strict ordering, not a tie that happens to sort this way.
    loo = [imp.loo_delta for imp in regenerated.importance]
    assert loo[0] > loo[1] > loo[2] > 0


def test_pareto_set_is_pinned(regenerated):
    assert [p.label for p in regenerated.pareto] == [
        "RB_8", "RB_8+SH_8+SK+RA",
    ]
    assert regenerated.pareto_ids() == [
        p["run_id"] for p in GOLDEN["pareto"]
    ]


def test_loaded_golden_round_trips():
    report = AblationReport.from_dict(GOLDEN)
    assert report.to_dict() == GOLDEN
    assert len(report.runs) == 8
    assert report.space.scene_names() == ["PARTY", "SPNZA"]


def test_guarded_run_matches_golden_metrics():
    guarded = run_space(golden_space(), params=golden_params(), guard=True)
    plain = AblationReport.from_dict(GOLDEN)
    assert guarded.per_scene_ipc() == plain.per_scene_ipc()
    assert guarded.importance_ranking() == plain.importance_ranking()
    assert guarded.pareto_ids() == plain.pareto_ids()
    assert guarded.speedups == pytest.approx(plain.speedups)


@pytest.fixture(scope="module")
def server():
    from repro.service import (
        ServiceConfig,
        ServiceHTTPServer,
        SimulationService,
    )

    ready = threading.Event()
    state = {}

    def serve():
        async def main():
            config = ServiceConfig(
                shards=2, poll_tick=0.01, heartbeat_interval=0.02,
            )
            async with SimulationService(config) as service:
                http = ServiceHTTPServer(service, "127.0.0.1", 0)
                await http.start()
                state["port"] = http.port
                state["stop"] = asyncio.Event()
                state["loop"] = asyncio.get_running_loop()
                ready.set()
                await state["stop"].wait()
                await http.stop()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(15), "server never came up"
    yield state
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)


def test_service_path_is_bit_identical_to_golden(server):
    from repro.service import ServiceClient

    client = ServiceClient(port=server["port"], timeout=120.0)
    report = execute_matrix(
        generate_matrix(golden_space()),
        params=golden_params(),
        service=client,
    )
    payload = json.dumps(report.to_dict(), sort_keys=True, indent=2)
    assert payload + "\n" == GOLDEN_PATH.read_text()
    assert render_json(report) == render_json(AblationReport.from_dict(GOLDEN))
