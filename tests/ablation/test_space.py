"""Knob-space declaration and validation tests."""

import json

import pytest

from repro.ablation import (
    KnobSpace,
    available_knobs,
    available_spaces,
    generate_matrix,
    knob_registry,
    load_space,
    named_space,
    resolve_space,
    space_catalog,
)
from repro.errors import AblationError


def make_space(**overrides):
    kwargs = dict(
        name="t",
        fixed={"rb_stack_entries": 8},
        ranges={"sh_stack_entries": [0, 8]},
    )
    kwargs.update(overrides)
    return KnobSpace(**kwargs)


def test_valid_space_builds():
    space = make_space()
    assert space.size == 2
    assert space.range_names == ["sh_stack_entries"]


def test_no_ranges_rejected():
    with pytest.raises(AblationError, match="no ranges"):
        make_space(ranges={})


def test_unknown_knob_in_ranges_rejected():
    with pytest.raises(AblationError, match="unknown knob 'warp_speed'"):
        make_space(ranges={"warp_speed": [1, 2]})


def test_unknown_knob_in_fixed_rejected():
    with pytest.raises(AblationError, match="unknown knob"):
        make_space(fixed={"nope": 1})


def test_empty_range_rejected():
    with pytest.raises(AblationError, match="empty range"):
        make_space(ranges={"sh_stack_entries": []})


def test_duplicate_range_value_rejected():
    with pytest.raises(AblationError, match="duplicate value"):
        make_space(ranges={"sh_stack_entries": [8, 8]})


def test_fixed_and_ranged_overlap_rejected():
    with pytest.raises(AblationError, match="both fixed and ranges"):
        make_space(
            fixed={"sh_stack_entries": 8},
            ranges={"sh_stack_entries": [0, 8]},
        )


def test_out_of_domain_value_rejected():
    with pytest.raises(AblationError, match="sh_stack_entries"):
        make_space(ranges={"sh_stack_entries": [-1, 8]})


def test_bool_knob_rejects_integers():
    with pytest.raises(AblationError, match="true/false"):
        make_space(ranges={"skewed_bank_access": [0, 1]})


def test_int_knob_rejects_bools():
    with pytest.raises(AblationError, match="integer"):
        make_space(ranges={"sh_stack_entries": [False, True]})


def test_choice_knob_rejects_unknown_choice():
    with pytest.raises(AblationError, match="spill_cache_policy"):
        make_space(ranges={"spill_cache_policy": ["uncached", "l3"]})


def test_null_only_where_nullable():
    make_space(ranges={"rb_stack_entries": [8, None]}, fixed={})
    with pytest.raises(AblationError, match="does not accept null"):
        make_space(ranges={"sh_stack_entries": [None, 8]})


def test_unknown_scene_rejected():
    with pytest.raises(AblationError, match="unknown scene"):
        make_space(scenes=("WKND", "ATLANTIS"))


def test_scene_names_are_canonicalized():
    space = make_space(scenes=("wknd", "bunny"))
    assert space.scene_names() == ["WKND", "BUNNY"]


def test_size_is_range_product():
    space = make_space(ranges={
        "sh_stack_entries": [0, 4, 8],
        "skewed_bank_access": [False, True],
    })
    assert space.size == 6


def test_to_from_dict_round_trip():
    space = make_space(scenes=("WKND",))
    again = KnobSpace.from_dict(space.to_dict())
    assert again.to_dict() == space.to_dict()


def test_from_dict_rejects_non_object():
    with pytest.raises(AblationError, match="JSON object"):
        KnobSpace.from_dict([1, 2])


def test_from_dict_rejects_unknown_top_level_keys():
    with pytest.raises(AblationError, match="unknown top-level"):
        KnobSpace.from_dict({"ranges": {"sh_stack_entries": [0]}, "foo": 1})


def test_from_dict_rejects_non_list_range():
    with pytest.raises(AblationError, match="JSON list"):
        KnobSpace.from_dict({"ranges": {"sh_stack_entries": 8}})


def test_load_space_missing_file(tmp_path):
    with pytest.raises(AblationError, match="cannot read"):
        load_space(tmp_path / "nope.json")


def test_load_space_malformed_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(AblationError, match="malformed JSON"):
        load_space(path)


def test_load_space_takes_name_from_stem(tmp_path):
    path = tmp_path / "mystudy.json"
    path.write_text(json.dumps({"ranges": {"sh_stack_entries": [0, 8]}}))
    assert load_space(path).name == "mystudy"


def test_registry_covers_strategy_pseudo_knob():
    registry = knob_registry()
    assert registry["strategy"].config_field is None
    assert "sms" in registry["strategy"].choices
    assert "strategy" in available_knobs()


def test_every_named_space_is_valid_and_expands():
    assert available_spaces() == sorted(available_spaces())
    for name in available_spaces():
        space = named_space(name)
        matrix = generate_matrix(space)
        assert len(matrix) >= 2
        assert space_catalog()[name]


def test_named_space_unknown_name():
    with pytest.raises(AblationError, match="unknown knob space"):
        named_space("figure-of-doom")


def test_resolve_space_prefers_names_then_paths(tmp_path):
    assert resolve_space("mechanisms").name == "mechanisms"
    path = tmp_path / "own.json"
    path.write_text(json.dumps({"ranges": {"sh_stack_entries": [0, 8]}}))
    assert resolve_space(str(path)).name == "own"
