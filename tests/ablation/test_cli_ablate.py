"""CLI happy paths for ``repro ablate``."""

import json

from repro.cli import main

#: Tiny but real: 2 design points x 1 scene at 1/16 resolution.
SPACE_DOC = {
    "name": "cli-test",
    "fixed": {"rb_stack_entries": 8},
    "ranges": {"sh_stack_entries": [0, 8]},
    "scenes": ["WKND"],
}


def write_space(tmp_path):
    path = tmp_path / "space.json"
    path.write_text(json.dumps(SPACE_DOC))
    return path


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def ablate_run(tmp_path, capsys, *extra):
    space = write_space(tmp_path)
    argv = [
        "ablate", "run", "--space", str(space), "--scale", "0.25",
        "--jobs", "1", "--no-cache", "--out", str(tmp_path / "run"),
    ]
    argv.extend(extra)
    return run_cli(argv, capsys)


def test_run_writes_report_and_prints_tables(tmp_path, capsys):
    code, out, err = ablate_run(tmp_path, capsys)
    assert code == 0
    assert "[sweep: space 'cli-test'" in out
    assert "[mechanism importance" in out
    assert "[Pareto frontier" in out
    assert "report written to" in err
    payload = json.loads((tmp_path / "run" / "report.json").read_text())
    assert payload["space"]["name"] == "cli-test"
    assert len(payload["runs"]) == 2


def test_run_json_format_is_the_canonical_payload(tmp_path, capsys):
    code, out, err = ablate_run(tmp_path, capsys, "--format", "json")
    assert code == 0
    printed = json.loads(out)
    on_disk = json.loads((tmp_path / "run" / "report.json").read_text())
    assert printed == on_disk


def test_report_rerenders_without_resimulating(tmp_path, capsys):
    ablate_run(tmp_path, capsys)
    code, out, err = run_cli(
        ["ablate", "report", str(tmp_path / "run")], capsys
    )
    assert code == 0
    assert "[sweep: space 'cli-test'" in out
    code, json_out, _ = run_cli(
        ["ablate", "report", str(tmp_path / "run"), "--format", "json"],
        capsys,
    )
    assert code == 0
    assert json.loads(json_out) == json.loads(
        (tmp_path / "run" / "report.json").read_text()
    )


def test_pareto_subcommand(tmp_path, capsys):
    ablate_run(tmp_path, capsys)
    code, out, err = run_cli(
        ["ablate", "pareto", str(tmp_path / "run")], capsys
    )
    assert code == 0
    assert "[Pareto frontier" in out
    code, json_out, _ = run_cli(
        ["ablate", "pareto", str(tmp_path / "run"), "--format", "json"],
        capsys,
    )
    assert code == 0
    frontier = json.loads(json_out)
    assert isinstance(frontier, list) and frontier
    assert {"run_id", "label", "sram_bytes", "speedup"} <= set(frontier[0])


def test_list_spaces(capsys):
    code, out, err = run_cli(["ablate", "run", "--list-spaces"], capsys)
    assert code == 0
    for name in ("mechanisms", "fig8", "fig15", "bounds", "sram_pareto"):
        assert name in out


def test_experiment_ablate_driver(capsys):
    from repro.experiments.runner import EXTRA_EXPERIMENTS, run_experiment
    from repro.runtime.cache import runtime_cache
    from repro.workloads.params import WorkloadParams

    assert "ablate" in EXTRA_EXPERIMENTS
    cache = runtime_cache(
        params=WorkloadParams().scaled(0.25),
        scene_names=["WKND"],
        jobs=1,
        use_cache=False,
    )
    text = run_experiment("ablate", cache)
    assert "[sweep: space 'mechanisms'" in text
    assert "[mechanism importance" in text
