"""CLI error paths: structured exit-2 messages, never raw tracebacks."""

import json

import pytest

from repro.cli import main


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_malformed_knob_space_file(tmp_path, capsys):
    path = tmp_path / "space.json"
    path.write_text("{definitely not json")
    code, out, err = run_cli(
        ["ablate", "run", "--space", str(path)], capsys
    )
    assert code == 2
    assert err.startswith("error: ")
    assert "malformed JSON" in err
    assert str(path) in err
    assert "Traceback" not in err + out


def test_missing_knob_space_file(tmp_path, capsys):
    code, out, err = run_cli(
        ["ablate", "run", "--space", str(tmp_path / "absent.json")], capsys
    )
    assert code == 2
    assert err.startswith("error: ")
    assert "cannot read" in err


def test_empty_range_rejected(tmp_path, capsys):
    path = tmp_path / "empty.json"
    path.write_text(json.dumps({"ranges": {"sh_stack_entries": []}}))
    code, out, err = run_cli(
        ["ablate", "run", "--space", str(path)], capsys
    )
    assert code == 2
    assert "empty range" in err
    assert "sh_stack_entries" in err
    assert "Traceback" not in err + out


def test_unknown_knob_name_rejected(tmp_path, capsys):
    path = tmp_path / "unknown.json"
    path.write_text(json.dumps({"ranges": {"quantum_bits": [1, 2]}}))
    code, out, err = run_cli(
        ["ablate", "run", "--space", str(path)], capsys
    )
    assert code == 2
    assert "unknown knob 'quantum_bits'" in err
    # The message teaches the fix: it lists the knobs that do exist.
    assert "sh_stack_entries" in err


def test_unknown_named_space_rejected(capsys):
    code, out, err = run_cli(
        ["ablate", "run", "--space", "figure-of-doom", "--no-cache"], capsys
    )
    assert code == 2
    assert "unknown knob space" in err
    assert "mechanisms" in err


def test_report_on_missing_run_dir(tmp_path, capsys):
    code, out, err = run_cli(
        ["ablate", "report", str(tmp_path / "never-ran")], capsys
    )
    assert code == 2
    assert err.startswith("error: ")
    assert "no such ablation run directory" in err
    assert "Traceback" not in err + out


def test_report_on_dir_without_report(tmp_path, capsys):
    code, out, err = run_cli(["ablate", "report", str(tmp_path)], capsys)
    assert code == 2
    assert "not an ablation run directory" in err


def test_pareto_on_missing_run_dir(tmp_path, capsys):
    code, out, err = run_cli(
        ["ablate", "pareto", str(tmp_path / "never-ran")], capsys
    )
    assert code == 2
    assert "no such ablation run directory" in err


def test_unknown_scene_rejected(tmp_path, capsys):
    code, out, err = run_cli(
        ["ablate", "run", "--space", "mechanisms", "--scenes", "ATLANTIS"],
        capsys,
    )
    assert code == 2
    assert "unknown scene" in err


def test_ablate_requires_an_action(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["ablate"])
    assert excinfo.value.code == 2
