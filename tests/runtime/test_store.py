"""Result store tests: round-trip, misses, corruption healing, admin."""

import json

import pytest

from repro.core.presets import named_config
from repro.runtime.job import SimulationJob
from repro.runtime.store import STORE_SCHEMA_VERSION, ResultStore
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)


@pytest.fixture(scope="module")
def job_and_result():
    job = SimulationJob.from_params("SHIP", named_config("RB_8"), PARAMS)
    return job, job.run()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_roundtrip_is_exact(store, job_and_result):
    job, result = job_and_result
    store.put(job.key(), result, spec=job.spec())
    loaded = store.get(job.key())
    assert loaded == result
    assert loaded.config == result.config
    assert loaded.counters == result.counters
    assert loaded.depth_stats == result.depth_stats
    assert loaded.ipc == result.ipc


def test_missing_key_is_none(store):
    assert store.get("0" * 64) is None
    assert ("0" * 64) not in store


def test_contains_and_len(store, job_and_result):
    job, result = job_and_result
    assert len(store) == 0
    store.put(job.key(), result)
    assert job.key() in store
    assert len(store) == 1
    assert list(store.keys()) == [job.key()]


def test_corrupt_entry_reads_as_miss_and_heals(store, job_and_result):
    job, result = job_and_result
    path = store.put(job.key(), result)
    path.write_text("{not json")
    assert store.get(job.key()) is None
    assert not path.exists()  # corrupt file removed


def test_schema_mismatch_reads_as_miss(store, job_and_result):
    job, result = job_and_result
    path = store.put(job.key(), result)
    payload = json.loads(path.read_text())
    payload["schema"] = STORE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert store.get(job.key()) is None


def test_clear_and_size(store, job_and_result):
    job, result = job_and_result
    store.put(job.key(), result)
    assert store.size_bytes() > 0
    assert store.clear() == 1
    assert len(store) == 0
    assert store.size_bytes() == 0


def test_default_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
    assert ResultStore().root == tmp_path / "envstore"


def test_spec_recorded_for_debugging(store, job_and_result):
    job, result = job_and_result
    path = store.put(job.key(), result, spec=job.spec())
    payload = json.loads(path.read_text())
    assert payload["spec"]["scene"] == "SHIP"
    assert payload["key"] == job.key()
