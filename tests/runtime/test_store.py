"""Result store tests: round-trip, misses, quarantine, failures, admin."""

import json

import pytest

from repro.core.presets import named_config
from repro.errors import InvariantViolationError
from repro.runtime.job import SimulationJob
from repro.runtime.store import STORE_SCHEMA_VERSION, ResultStore
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)


@pytest.fixture(scope="module")
def job_and_result():
    job = SimulationJob.from_params("SHIP", named_config("RB_8"), PARAMS)
    return job, job.run()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def test_roundtrip_is_exact(store, job_and_result):
    job, result = job_and_result
    store.put(job.key(), result, spec=job.spec())
    loaded = store.get(job.key())
    assert loaded == result
    assert loaded.config == result.config
    assert loaded.counters == result.counters
    assert loaded.depth_stats == result.depth_stats
    assert loaded.ipc == result.ipc


def test_missing_key_is_none(store):
    assert store.get("0" * 64) is None
    assert ("0" * 64) not in store


def test_contains_and_len(store, job_and_result):
    job, result = job_and_result
    assert len(store) == 0
    store.put(job.key(), result)
    assert job.key() in store
    assert len(store) == 1
    assert list(store.keys()) == [job.key()]


def test_corrupt_entry_reads_as_miss_and_is_quarantined(
    store, job_and_result, caplog
):
    job, result = job_and_result
    path = store.put(job.key(), result)
    path.write_text("{not json")
    with caplog.at_level("WARNING", logger="repro.runtime.store"):
        assert store.get(job.key()) is None
    assert not path.exists()  # moved out of the result shard...
    quarantined = store.root / "corrupt" / path.name
    assert quarantined.exists()  # ...but the evidence survives
    assert quarantined.read_text() == "{not json"
    assert any("quarantined" in record.message for record in caplog.records)
    # quarantined files never pollute the key listing
    assert list(store.keys()) == []
    assert store.get(job.key()) is None  # and the miss is stable


def test_schema_mismatch_reads_as_miss(store, job_and_result):
    job, result = job_and_result
    path = store.put(job.key(), result)
    payload = json.loads(path.read_text())
    payload["schema"] = STORE_SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert store.get(job.key()) is None
    assert (store.root / "corrupt" / path.name).exists()


def test_record_failure_roundtrip(store, job_and_result):
    job, _ = job_and_result
    error = InvariantViolationError(
        "LIFO violated", cycle=812, sm_id=0, warp_id=3, lane=7,
        component="stack[slot=0]",
    )
    path = store.record_failure(job.key(), error, spec=job.spec())
    assert path == store.failure_path_for(job.key())
    payload = store.failure_for(job.key())
    assert payload["error"]["type"] == "InvariantViolationError"
    assert payload["error"]["diagnostics"] == {
        "cycle": 812, "sm": 0, "warp": 3, "lane": 7,
        "component": "stack[slot=0]",
    }
    assert payload["spec"]["scene"] == "SHIP"
    assert list(store.failures()) == [job.key()]
    # failure records never masquerade as results
    assert list(store.keys()) == []
    assert store.get(job.key()) is None


def test_failure_for_missing_key_is_none(store):
    assert store.failure_for("0" * 64) is None
    assert list(store.failures()) == []


def test_clear_and_size(store, job_and_result):
    job, result = job_and_result
    store.put(job.key(), result)
    assert store.size_bytes() > 0
    assert store.clear() == 1
    assert len(store) == 0
    assert store.size_bytes() == 0


def test_default_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
    assert ResultStore().root == tmp_path / "envstore"


def test_spec_recorded_for_debugging(store, job_and_result):
    job, result = job_and_result
    path = store.put(job.key(), result, spec=job.spec())
    payload = json.loads(path.read_text())
    assert payload["spec"]["scene"] == "SHIP"
    assert payload["key"] == job.key()


# -- failure-record tracebacks (the evidence trail for give-ups) ----------

def raise_violation():
    raise InvariantViolationError(
        "LIFO violated", cycle=31, sm_id=0, warp_id=1, lane=2,
        component="stack[slot=0]",
    )


def test_record_failure_formats_live_traceback(store):
    """With no explicit text, whatever traceback the exception still
    carries is formatted into the record — naming the raise site."""
    key = "a" * 64
    try:
        raise_violation()
    except InvariantViolationError as error:
        store.record_failure(key, error)
    rendered = store.failure_for(key)["error"]["traceback"]
    assert "InvariantViolationError" in rendered
    assert "raise_violation" in rendered  # the actual raise site


def test_record_failure_explicit_traceback_wins(store):
    """A caller-captured traceback (e.g. from a pool worker) passes
    through verbatim instead of being re-formatted locally."""
    key = "b" * 64
    error = InvariantViolationError(
        "LIFO violated", cycle=1, sm_id=0, warp_id=0, lane=0,
        component="stack[slot=0]",
    )
    store.record_failure(key, error, traceback_text="<worker traceback>")
    assert store.failure_for(key)["error"]["traceback"] == "<worker traceback>"


def test_record_failure_without_traceback_is_none(store):
    """An exception that was never raised has no traceback to record."""
    key = "c" * 64
    error = InvariantViolationError(
        "LIFO violated", cycle=1, sm_id=0, warp_id=0, lane=0,
        component="stack[slot=0]",
    )
    store.record_failure(key, error)
    assert store.failure_for(key)["error"]["traceback"] is None
