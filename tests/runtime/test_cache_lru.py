"""LRU bounds on the in-memory caches: traced scenes and the trace memo."""

import importlib

from repro.core.presets import named_config
from repro.experiments.common import WorkloadCache
from repro.runtime.cache import runtime_cache
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)
SCENES = ["WKND", "SPRNG", "FOX", "LANDS"]


def test_workload_cache_unbounded_by_default():
    cache = WorkloadCache(scene_names=SCENES, params=PARAMS)
    for name in SCENES:
        cache.traced(name)
    assert cache.evictions == 0
    assert len(cache._cache) == len(SCENES)


def test_workload_cache_lru_evicts_oldest():
    cache = WorkloadCache(scene_names=SCENES, params=PARAMS, max_traced=2)
    for name in SCENES[:3]:
        cache.traced(name)
    assert cache.evictions == 1
    assert list(cache._cache) == ["SPRNG", "FOX"]
    # A hit refreshes recency: SPRNG survives the next insertion.
    cache.traced("SPRNG")
    cache.traced("LANDS")
    assert list(cache._cache) == ["SPRNG", "LANDS"]
    assert cache.evictions == 2
    # Evicted scenes re-trace transparently.
    assert cache.traced("WKND") is not None
    assert cache.evictions == 3


def test_runtime_cache_exposes_evictions_in_metrics(tmp_path):
    cache = runtime_cache(
        params=PARAMS, scene_names=SCENES[:3], jobs=1,
        use_cache=False, max_traced=1,
    )
    for name in SCENES[:3]:
        cache.traced(name)
    assert cache.evictions == 2
    assert cache.metrics.evictions == 2
    assert "evictions" in cache.metrics.summary()


def test_trace_memo_capacity_env_knob(monkeypatch):
    job_module = importlib.import_module("repro.runtime.job")
    monkeypatch.setenv("REPRO_TRACE_MEMO", "2")
    assert job_module._trace_memo_capacity() == 2
    monkeypatch.setenv("REPRO_TRACE_MEMO", "bogus")
    assert job_module._trace_memo_capacity() == job_module._TRACE_MEMO_CAPACITY
    monkeypatch.delenv("REPRO_TRACE_MEMO")
    assert job_module._trace_memo_capacity() == job_module._TRACE_MEMO_CAPACITY


def test_trace_memo_evicts_at_capacity(monkeypatch):
    job_module = importlib.import_module("repro.runtime.job")
    monkeypatch.setenv("REPRO_TRACE_MEMO", "1")
    config = named_config("RB_8")
    before = job_module.trace_memo_evictions()
    from repro.runtime.job import SimulationJob

    for scene in ("WKND", "SPRNG"):
        SimulationJob(
            scene=scene, config=config, width=6, height=6, spp=1,
            max_bounces=2,
        ).run()
    assert len(job_module._TRACE_MEMO) <= 1
    assert job_module.trace_memo_evictions() > before
