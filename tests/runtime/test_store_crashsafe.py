"""Crash-safety tests: a killed writer can never tear a store entry."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.presets import named_config
from repro.runtime.job import SimulationJob
from repro.runtime.store import ResultStore, _write_json_crash_safe
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)


@pytest.fixture(scope="module")
def job_and_result():
    job = SimulationJob.from_params("WKND", named_config("RB_8"), PARAMS)
    return job, job.run()


def test_crash_between_tmp_and_replace_preserves_old_entry(
    tmp_path, monkeypatch, job_and_result
):
    """A crash after writing the temp file leaves the old entry intact."""
    job, result = job_and_result
    store = ResultStore(tmp_path / "store")
    store.put(job.key(), result, spec=job.spec())
    before = store.path_for(job.key()).read_text()

    def exploding_replace(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        store.put(job.key(), result, spec=job.spec())
    monkeypatch.undo()
    # The visible entry is byte-identical to the pre-crash one and the
    # stranded temp file is invisible to every read path.
    assert store.path_for(job.key()).read_text() == before
    assert store.get(job.key()) == result
    assert len(store) == 1
    assert not any(store.root.glob("corrupt/*"))


def test_tmp_names_never_collide(tmp_path):
    path = tmp_path / "ab" / "entry.json"
    _write_json_crash_safe(path, {"v": 1})
    _write_json_crash_safe(path, {"v": 2})
    assert json.loads(path.read_text()) == {"v": 2}
    assert list(path.parent.glob("*.tmp.*")) == []


_WRITER_SCRIPT = r"""
import sys
from repro.runtime.store import _write_json_crash_safe
from pathlib import Path

root = Path(sys.argv[1])
payload = {"blob": "x" * 4096, "fields": list(range(512))}
index = 0
print("ready", flush=True)
while True:
    index += 1
    _write_json_crash_safe(root / "aa" / f"entry-{index % 32}.json",
                           dict(payload, index=index))
"""


def test_sigkill_mid_write_leaves_no_torn_entry(tmp_path):
    """SIGKILL a process hammering the store; every surviving entry
    must parse as complete JSON (the satellite's kill-during-write
    scenario)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    writer = subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path)],
        env=env, stdout=subprocess.PIPE,
    )
    try:
        assert writer.stdout.readline().strip() == b"ready"
        deadline = time.monotonic() + 10.0
        while not list(tmp_path.glob("aa/*.json")):
            assert time.monotonic() < deadline, "writer produced nothing"
            time.sleep(0.01)
        time.sleep(0.05)  # let it get mid-flight on several entries
    finally:
        writer.kill()
        writer.wait()
        writer.stdout.close()

    entries = sorted(tmp_path.glob("aa/*.json"))
    assert entries, "no entries survived to check"
    for entry in entries:
        payload = json.loads(entry.read_text())  # torn JSON would raise
        assert payload["blob"] == "x" * 4096
        assert payload["fields"] == list(range(512))
