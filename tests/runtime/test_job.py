"""Job model tests: content addressing, spec resolution, purity."""

import pytest

from repro.core.presets import named_config
from repro.runtime.job import SimulationJob, cache_salt
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)


def job_for(config_name="RB_8", scene="SHIP", **overrides):
    job = SimulationJob.from_params(scene, named_config(config_name), PARAMS)
    if overrides:
        from dataclasses import replace

        job = replace(job, **overrides)
    return job


def test_key_is_deterministic():
    assert job_for().key() == job_for().key()


def test_key_is_hex_sha256():
    key = job_for().key()
    assert len(key) == 64
    int(key, 16)  # raises if not hex


def test_key_changes_with_config():
    assert job_for("RB_8").key() != job_for("RB_FULL").key()
    assert job_for("RB_8").key() != job_for("RB_8+SH_8").key()


def test_key_changes_with_scene_and_workload():
    base = job_for()
    assert base.key() != job_for(scene="CRNVL").key()
    assert base.key() != job_for(width=base.width + 1).key()
    assert base.key() != job_for(seed=99).key()
    assert base.key() != job_for(max_bounces=base.max_bounces + 1).key()


def test_key_changes_with_salt(monkeypatch):
    base = job_for().key()
    monkeypatch.setenv("REPRO_CACHE_SALT", "experiment-42")
    assert job_for().key() != base
    assert "experiment-42" in cache_salt()


def test_from_params_resolves_complex_tier():
    params = WorkloadParams(width=32, height=32, complex_width=8,
                            complex_height=8)
    simple = SimulationJob.from_params("SHIP", named_config("RB_8"), params)
    complex_ = SimulationJob.from_params("ROBOT", named_config("RB_8"), params)
    assert (simple.width, simple.height) == (32, 32)
    assert (complex_.width, complex_.height) == (8, 8)


def test_from_params_uppercases_scene():
    assert SimulationJob.from_params(
        "ship", named_config("RB_8"), PARAMS
    ).scene == "SHIP"


def test_run_matches_direct_simulation():
    from repro.experiments.common import WorkloadCache

    job = job_for()
    direct = WorkloadCache(params=PARAMS, scene_names=["SHIP"]).simulate(
        "SHIP", named_config("RB_8")
    )
    via_job = job.run()
    assert via_job == direct


def test_job_is_hashable_and_spec_is_json_canonical():
    import json

    job = job_for()
    assert hash(job) == hash(job_for())
    blob = json.dumps(job.spec(), sort_keys=True)
    assert json.loads(blob)["scene"] == "SHIP"
