"""Runtime integration: equivalence, persistence, and the rewired paths.

Covers the acceptance criteria: a parallel first run produces
``SimulationResult`` values identical to the serial path, and a repeated
campaign over 2 scenes x 3 configs is served entirely from the result
store (zero simulations on the second run).
"""

import pytest

from repro.analysis import Campaign
from repro.experiments.common import WorkloadCache
from repro.core.presets import named_config
from repro.runtime import (
    CachedWorkloadCache,
    ExecutionPolicy,
    ResultStore,
    runtime_cache,
)
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)
SCENES = ("SHIP", "CRNVL")
CONFIGS = ("RB_8", "RB_8+SH_8+SK+RA", "RB_FULL")


def make_campaign(tmp_path, **overrides):
    options = dict(
        configs=CONFIGS,
        scenes=SCENES,
        params=PARAMS,
        cache_dir=tmp_path / "store",
    )
    options.update(overrides)
    return Campaign(**options)


def test_parallel_run_identical_to_serial(tmp_path):
    serial = make_campaign(tmp_path, jobs=1, use_cache=False).run()
    parallel = make_campaign(tmp_path, jobs=4, use_cache=False).run()
    assert len(serial.results) == len(SCENES) * len(CONFIGS)
    for left, right in zip(serial.results, parallel.results):
        assert left == right  # full dataclass equality, bit-identical
        assert left.counters == right.counters
        assert left.depth_stats == right.depth_stats
    assert serial.normalized_means() == parallel.normalized_means()


def test_second_campaign_run_is_fully_cached(tmp_path):
    first = make_campaign(tmp_path, jobs=2).run()
    assert first.metrics.simulated == len(SCENES) * len(CONFIGS)
    second = make_campaign(tmp_path, jobs=2).run()
    # >= 90% served from the store — in fact all of it, zero simulations.
    assert second.metrics.simulated == 0
    assert second.metrics.cache_hits == len(SCENES) * len(CONFIGS)
    assert second.metrics.cache_hit_rate == 1.0
    assert [r.counters for r in second.results] == [
        r.counters for r in first.results
    ]


def test_config_change_invalidates(tmp_path):
    make_campaign(tmp_path, jobs=1).run()
    changed = make_campaign(
        tmp_path, jobs=1, configs=("RB_8", "RB_4", "RB_FULL")
    ).run()
    # RB_8 and RB_FULL hit, the new RB_4 column simulates.
    assert changed.metrics.cache_hits == 2 * len(SCENES)
    assert changed.metrics.simulated == len(SCENES)


def test_params_change_invalidates(tmp_path):
    make_campaign(tmp_path, jobs=1).run()
    rerun = make_campaign(
        tmp_path, jobs=1, params=WorkloadParams().scaled(0.3)
    ).run()
    assert rerun.metrics.cache_hits == 0


def test_salt_change_invalidates(tmp_path, monkeypatch):
    make_campaign(tmp_path, jobs=1).run()
    monkeypatch.setenv("REPRO_CACHE_SALT", "new-code-version")
    rerun = make_campaign(tmp_path, jobs=1).run()
    assert rerun.metrics.cache_hits == 0
    assert rerun.metrics.simulated == len(SCENES) * len(CONFIGS)


def test_legacy_cache_path_still_serial(tmp_path):
    cache = WorkloadCache(params=PARAMS, scene_names=["SHIP"])
    result = Campaign(configs=("RB_8",), scenes=("SHIP",)).run(cache)
    assert result.metrics is None  # legacy path bypasses the runtime
    assert result.results[0].scene_name == "SHIP"


def test_cached_sweep_matches_plain_sweep(tmp_path):
    configs = [named_config(name) for name in CONFIGS]
    plain = WorkloadCache(params=PARAMS, scene_names=list(SCENES))
    cached = CachedWorkloadCache(
        params=PARAMS,
        scene_names=list(SCENES),
        store=ResultStore(tmp_path / "store"),
        policy=ExecutionPolicy(workers=2),
    )
    expected = plain.sweep(configs)
    actual = cached.sweep(configs)
    assert actual == expected
    # And again, now fully from the store.
    again = cached.sweep(configs)
    assert again == expected
    assert cached.metrics.cache_hits >= len(SCENES) * len(CONFIGS)


def test_cached_simulate_hits_store(tmp_path):
    cached = runtime_cache(
        params=PARAMS, scene_names=["SHIP"], jobs=1,
        cache_dir=tmp_path / "store",
    )
    config = named_config("RB_8")
    first = cached.simulate("SHIP", config)
    assert cached.metrics.simulated == 1
    second = cached.simulate("SHIP", config)
    assert cached.metrics.cache_hits == 1
    assert first == second


def test_run_experiment_accepts_runtime_cache(tmp_path):
    from repro.experiments.runner import run_experiment

    cache = runtime_cache(
        params=PARAMS, scene_names=list(SCENES), jobs=2,
        cache_dir=tmp_path / "store",
    )
    report = run_experiment("fig13", cache)
    assert "SHIP" in report
    assert cache.metrics.simulated > 0
    # Regenerating is free now.
    cache2 = runtime_cache(
        params=PARAMS, scene_names=list(SCENES), jobs=2,
        cache_dir=tmp_path / "store",
    )
    report2 = run_experiment("fig13", cache2)
    assert report2 == report
    assert cache2.metrics.simulated == 0


def test_cli_experiment_runtime_flags(tmp_path, capsys):
    from repro.cli import main

    code = main([
        "experiment", "fig14", "--scale", "0.25", "--scenes", "SHIP",
        "--jobs", "1", "--cache-dir", str(tmp_path / "store"),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "Fig. 14" in captured.out
    assert "[repro]" in captured.err  # metrics summary on stderr

    # --no-cache still works and recomputes.
    assert main([
        "experiment", "fig14", "--scale", "0.25", "--scenes", "SHIP",
        "--jobs", "1", "--no-cache",
    ]) == 0


def test_cli_cache_command(tmp_path, capsys):
    from repro.cli import main

    store_dir = tmp_path / "store"
    make_campaign(tmp_path, jobs=1, cache_dir=store_dir).run()
    assert main(["cache", "--cache-dir", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "entries" in out
    assert "6" in out
    assert main(["cache", "--cache-dir", str(store_dir), "--clear"]) == 0
    assert "cleared 6" in capsys.readouterr().out


def test_progress_line_renders(tmp_path, capsys):
    campaign = make_campaign(tmp_path, jobs=1, progress=True,
                             scenes=("SHIP",), configs=("RB_8",))
    campaign.run()
    err = capsys.readouterr().err
    assert "[repro]" in err
    assert "1/1" in err
