"""Executor tests: ordering, dedup, retry, timeout and pool-failure paths.

Fault injection uses :class:`StubJob`, a picklable job whose behavior is
steered by flags and cross-process counter files — so a job can fail its
first N attempts (retry path), sleep only when run inside a pool worker
(timeout-then-serial-fallback path), or kill the worker process outright
(broken-pool degradation path) while still succeeding in-process.
"""

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

import pytest

from repro.errors import JobExecutionError
from repro.runtime.executor import ExecutionPolicy, run_jobs


def _in_worker() -> bool:
    """True when executing inside a pool worker process."""
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class StubJob:
    """Configurable fault-injection job (module-level, so it pickles)."""

    token: str
    counter_dir: str = ""
    fail_first: int = 0
    sleep_in_worker: float = 0.0
    kill_worker: bool = False

    def key(self) -> str:
        return hashlib.sha256(self.token.encode()).hexdigest()

    def describe(self) -> str:
        return f"stub:{self.token}"

    def _attempt(self) -> int:
        """Count executions across processes via a file per token."""
        path = os.path.join(self.counter_dir, f"{self.token}.count")
        count = 1
        if os.path.exists(path):
            count = int(open(path).read()) + 1
        with open(path, "w") as handle:
            handle.write(str(count))
        return count

    def run(self) -> str:
        if self.sleep_in_worker and _in_worker():
            time.sleep(self.sleep_in_worker)
        if self.kill_worker and _in_worker():
            os._exit(13)
        if self.counter_dir:
            attempt = self._attempt()
            if attempt <= self.fail_first:
                raise RuntimeError(f"injected failure #{attempt}")
        return f"ok:{self.token}"


def stub(token, tmp_path, **kwargs):
    return StubJob(token=token, counter_dir=str(tmp_path), **kwargs)


FAST = dict(backoff=0.01)


def test_serial_results_in_order(tmp_path):
    jobs = [stub(f"j{i}", tmp_path) for i in range(3)]
    report = run_jobs(jobs, policy=ExecutionPolicy(workers=1, **FAST))
    assert report.results == ["ok:j0", "ok:j1", "ok:j2"]
    assert report.metrics.simulated == 3
    assert report.metrics.done == 3


def test_parallel_results_in_order(tmp_path):
    jobs = [stub(f"p{i}", tmp_path) for i in range(5)]
    report = run_jobs(jobs, policy=ExecutionPolicy(workers=2, **FAST))
    assert report.results == [f"ok:p{i}" for i in range(5)]
    assert report.metrics.simulated == 5
    assert len(report.metrics.job_seconds) == 5


def test_duplicate_jobs_computed_once(tmp_path):
    job = stub("dup", tmp_path)
    report = run_jobs([job, job, job],
                      policy=ExecutionPolicy(workers=1, **FAST))
    assert report.results == ["ok:dup"] * 3
    assert report.metrics.simulated == 1
    assert report.metrics.deduplicated == 2
    # The counter file proves a single execution.
    assert (tmp_path / "dup.count").read_text() == "1"


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_then_succeed(tmp_path, workers):
    jobs = [stub("flaky", tmp_path, fail_first=2)]
    report = run_jobs(
        jobs, policy=ExecutionPolicy(workers=workers, retries=3, **FAST)
    )
    assert report.results == ["ok:flaky"]
    assert report.metrics.retries == 2
    assert report.metrics.failed == 0


@pytest.mark.parametrize("workers", [1, 2])
def test_retry_budget_exhausted_raises(tmp_path, workers):
    jobs = [stub("doomed", tmp_path, fail_first=10)]
    with pytest.raises(JobExecutionError, match="stub:doomed"):
        run_jobs(jobs, policy=ExecutionPolicy(workers=workers, retries=1,
                                              **FAST))


def test_timeout_then_serial_fallback(tmp_path):
    # Sleeps 60s inside a worker, returns instantly in-process: the
    # pool attempt times out and the serial fallback must succeed.
    jobs = [stub("slow", tmp_path, sleep_in_worker=60.0),
            stub("quick", tmp_path)]
    started = time.monotonic()
    report = run_jobs(
        jobs, policy=ExecutionPolicy(workers=2, timeout=0.3, **FAST)
    )
    assert time.monotonic() - started < 30
    assert report.results == ["ok:slow", "ok:quick"]
    assert report.metrics.timeouts >= 1
    assert report.metrics.serial_fallbacks >= 1


def test_broken_pool_degrades_to_serial(tmp_path):
    # The middle job kills its worker process; BrokenProcessPool must
    # divert every unfinished job to in-process execution.
    jobs = [stub("a", tmp_path), stub("boom", tmp_path, kill_worker=True),
            stub("b", tmp_path), stub("c", tmp_path)]
    report = run_jobs(jobs, policy=ExecutionPolicy(workers=2, **FAST))
    assert report.results == ["ok:a", "ok:boom", "ok:b", "ok:c"]
    assert report.metrics.serial_fallbacks >= 1
    assert report.metrics.done == 4


def test_empty_job_list():
    report = run_jobs([], policy=ExecutionPolicy(workers=4))
    assert report.results == []
    assert report.metrics.jobs_total == 0


def test_auto_worker_sizing_caps_to_pending():
    policy = ExecutionPolicy(workers=None)
    assert policy.effective_workers(1) == 1
    assert policy.effective_workers(10 ** 6) >= 1
    assert ExecutionPolicy(workers=8).effective_workers(3) == 3
    assert ExecutionPolicy(workers=0).effective_workers(5) == 1


def test_serial_runner_override(tmp_path):
    seen = []

    def runner(job):
        seen.append(job.token)
        return f"local:{job.token}"

    jobs = [stub("x", tmp_path), stub("y", tmp_path)]
    report = run_jobs(jobs, policy=ExecutionPolicy(workers=1, **FAST),
                      serial_runner=runner)
    assert report.results == ["local:x", "local:y"]
    assert seen == ["x", "y"]


# -- traceback capture on terminal failures -------------------------------

@pytest.mark.parametrize("workers", [1, 2])
def test_exhausted_retries_attach_traceback(tmp_path, workers):
    """The JobExecutionError surfaces the raise site — including the
    remote traceback when the final attempt died inside a pool worker."""
    jobs = [stub("tbdoomed", tmp_path, fail_first=10)]
    with pytest.raises(JobExecutionError) as excinfo:
        run_jobs(jobs, policy=ExecutionPolicy(workers=workers, retries=1,
                                              **FAST))
    rendered = excinfo.value.traceback_text
    assert "RuntimeError" in rendered
    assert "injected failure" in rendered


@dataclass(frozen=True)
class GuardTripJob:
    """Deterministically violates an integrity guard (module-level, so
    it pickles)."""

    token: str

    def key(self) -> str:
        return hashlib.sha256(f"guard:{self.token}".encode()).hexdigest()

    def describe(self) -> str:
        return f"guardtrip:{self.token}"

    def spec(self):
        return {"token": self.token}

    def run(self):
        from repro.errors import InvariantViolationError

        raise InvariantViolationError(
            "LIFO violated", cycle=7, sm_id=0, warp_id=1, lane=2,
            component="stack[slot=0]",
        )


def test_guard_violation_failure_record_carries_traceback(tmp_path):
    from repro.runtime.store import ResultStore

    store = ResultStore(tmp_path / "store")
    job = GuardTripJob("g1")
    with pytest.raises(JobExecutionError, match="integrity guard") as excinfo:
        run_jobs([job], store=store,
                 policy=ExecutionPolicy(workers=1, **FAST))
    assert "InvariantViolationError" in excinfo.value.traceback_text
    payload = store.failure_for(job.key())
    rendered = payload["error"]["traceback"]
    assert "InvariantViolationError" in rendered
    assert "in run" in rendered  # pinpoints the raise site, not the wrapper
