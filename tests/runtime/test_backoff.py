"""Backoff tests: the deterministic schedule and its executor wiring."""

import hashlib
from dataclasses import dataclass

import pytest

from repro.runtime.backoff import backoff_delay
from repro.runtime.executor import ExecutionPolicy, run_jobs


def test_schedule_is_deterministic():
    a = [backoff_delay(n, base=0.1, cap=2.0, seed=3, key="k") for n in range(1, 6)]
    b = [backoff_delay(n, base=0.1, cap=2.0, seed=3, key="k") for n in range(1, 6)]
    assert a == b


def test_exponential_envelope_and_cap():
    for attempt in range(1, 10):
        raw = min(2.0, 0.1 * 2.0 ** (attempt - 1))
        delay = backoff_delay(attempt, base=0.1, cap=2.0, seed=0, key="x")
        # Jitter keeps the delay in [raw/2, raw).
        assert raw / 2 <= delay < raw
    assert backoff_delay(50, base=0.1, cap=2.0) < 2.0


def test_jitter_differs_by_key_and_seed():
    base = backoff_delay(3, seed=0, key="alpha")
    assert backoff_delay(3, seed=0, key="beta") != base
    assert backoff_delay(3, seed=1, key="alpha") != base


def test_zero_base_disables_backoff():
    assert backoff_delay(4, base=0.0) == 0.0


def test_attempt_floor():
    assert backoff_delay(0, base=0.1) == backoff_delay(1, base=0.1)


def test_policy_retry_delay_matches_helper():
    policy = ExecutionPolicy(backoff=0.2, backoff_cap=1.5, backoff_seed=7)
    assert policy.retry_delay(3, key="job") == backoff_delay(
        3, base=0.2, cap=1.5, seed=7, key="job"
    )


@dataclass(frozen=True)
class FlakyJob:
    """Fails its first attempt (marker file), then succeeds."""

    name: str
    marker_dir: str

    def key(self) -> str:
        return hashlib.sha256(f"flaky:{self.name}".encode()).hexdigest()

    def run(self):
        import os

        marker = os.path.join(self.marker_dir, f"flaky-{self.name}")
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("1")
            raise ValueError("first attempt fails")
        return {"name": self.name}


def test_executor_records_backoff_metrics(tmp_path):
    job = FlakyJob(name="a", marker_dir=str(tmp_path))
    policy = ExecutionPolicy(
        workers=1, retries=2, backoff=0.01, backoff_cap=0.05, backoff_seed=0
    )
    report = run_jobs([job], policy=policy)
    assert report.results == [{"name": "a"}]
    assert report.metrics.retries == 1
    # The recorded total is exactly the deterministic schedule's sum.
    expected = backoff_delay(
        1, base=0.01, cap=0.05, seed=0, key=job.key()
    )
    assert report.metrics.backoff_total_s == pytest.approx(expected)
