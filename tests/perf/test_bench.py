"""The benchmark harness: payloads, persistence, and the regression gate."""

import json

import pytest

from repro.perf.bench import (
    BenchError,
    BenchPayload,
    calibrate,
    compare_benchmarks,
    format_comparison,
    format_payload,
    load_payload,
    run_benchmarks,
    save_payload,
)
from repro.perf.workloads import MATRIX_VERSION, REFERENCE_MATRIX, BenchCase


def _payload(tag="t", calibration=0.1, wall=1.0, name="trace:X",
             matrix_version=MATRIX_VERSION):
    payload = BenchPayload(
        tag=tag, calibration_s=calibration, matrix_version=matrix_version
    )
    payload.results[name] = {
        "wall_s": wall, "rays": 10, "steps": 100,
        "rays_per_s": 10 / wall, "steps_per_s": 100 / wall,
        "peak_rss_kb": None,
    }
    return payload


def test_reference_matrix_is_well_formed():
    names = [case.name for case in REFERENCE_MATRIX]
    assert len(names) == len(set(names))
    trace_names = {c.name for c in REFERENCE_MATRIX if c.kind == "trace"}
    for case in REFERENCE_MATRIX:
        assert case.kind in ("trace", "sim")
        if case.kind == "sim":
            assert case.source in trace_names
            assert case.config
            assert case.backend in (None, "stepped", "vector")
        else:
            assert case.backend is None


def test_calibration_is_positive_and_scales():
    short = calibrate(scale=1)
    assert short > 0


def test_payload_roundtrip(tmp_path):
    payload = _payload(tag="roundtrip", wall=0.5)
    path = save_payload(payload, tmp_path / "BENCH_x.json")
    clone = load_payload(path)
    assert clone.tag == "roundtrip"
    assert clone.matrix_version == payload.matrix_version
    assert clone.results == payload.results
    assert clone.trace_wall_s == payload.trace_wall_s


def test_load_rejects_bad_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999, "tag": "x"}))
    with pytest.raises(BenchError):
        load_payload(path)


def test_gate_passes_within_tolerance():
    baseline = _payload(tag="baseline", wall=1.0)
    current = _payload(tag="pr", wall=1.1)  # 10% slower, 15% tolerance
    assert compare_benchmarks(current, baseline) == []


def test_gate_flags_regression():
    baseline = _payload(tag="baseline", wall=1.0)
    current = _payload(tag="pr", wall=1.5)
    regressions = compare_benchmarks(current, baseline)
    assert len(regressions) == 1
    assert regressions[0]["case"] == "trace:X"
    assert regressions[0]["ratio"] == pytest.approx(1.5)


def test_gate_normalizes_by_calibration():
    # Same code on a machine 2x slower: wall doubles, calibration doubles,
    # calibrated time is unchanged -> no regression.
    baseline = _payload(tag="baseline", calibration=0.1, wall=1.0)
    current = _payload(tag="pr", calibration=0.2, wall=2.0)
    assert compare_benchmarks(current, baseline) == []


def test_gate_rejects_matrix_mismatch():
    baseline = _payload(tag="baseline", matrix_version=MATRIX_VERSION)
    current = _payload(tag="pr", matrix_version=MATRIX_VERSION + 1)
    with pytest.raises(BenchError):
        compare_benchmarks(current, baseline)


def test_formatters_render():
    baseline = _payload(tag="baseline", wall=1.0)
    current = _payload(tag="pr", wall=1.5)
    regressions = compare_benchmarks(current, baseline)
    table = format_payload(current)
    assert "trace:X" in table and "totals" in table
    verdict = format_comparison(current, baseline, regressions)
    assert "REGRESSION" in verdict and "gate: FAIL" in verdict
    assert "gate: PASS" in format_comparison(baseline, baseline, [])


def test_run_benchmarks_smoke():
    # One tiny trace case plus a sim case on its output: exercises the
    # full measurement path in well under a second.
    cases = (
        BenchCase(name="trace:BUNNY", kind="trace", scene="BUNNY",
                  width=6, height=6, bounces=1),
        BenchCase(name="sim:BUNNY/RB_8", kind="sim", scene="BUNNY",
                  config="RB_8", source="trace:BUNNY"),
        BenchCase(name="sim:BUNNY/RB_8/vector", kind="sim", scene="BUNNY",
                  config="RB_8", source="trace:BUNNY", backend="vector"),
    )
    messages = []
    payload = run_benchmarks("smoke", cases=cases, repeats=1,
                             log=messages.append)
    assert set(payload.results) == {
        "trace:BUNNY", "sim:BUNNY/RB_8", "sim:BUNNY/RB_8/vector"
    }
    trace_result = payload.results["trace:BUNNY"]
    assert trace_result["wall_s"] > 0 and trace_result["rays"] > 0
    # Trace cases have no cycle metrics at all (not even null entries).
    assert "cycles" not in trace_result
    assert "cycles_per_s" not in trace_result
    assert "backend" not in trace_result
    sim_result = payload.results["sim:BUNNY/RB_8"]
    assert sim_result["cycles"] and sim_result["cycles_per_s"] > 0
    assert sim_result["backend"] == "stepped"
    vector_result = payload.results["sim:BUNNY/RB_8/vector"]
    assert vector_result["backend"] == "vector"
    # Bit-identity contract: same traces, same simulated cycles.
    assert vector_result["cycles"] == sim_result["cycles"]
    assert payload.calibration_s > 0
    assert any("calibrating" in m for m in messages)


def test_run_benchmarks_rejects_unknown_source():
    cases = (
        BenchCase(name="sim:X", kind="sim", scene="BUNNY",
                  config="RB_8", source="trace:MISSING"),
    )
    with pytest.raises(BenchError):
        run_benchmarks("bad", cases=cases, repeats=1)


def test_run_benchmarks_rejects_zero_repeats():
    with pytest.raises(BenchError):
        run_benchmarks("bad", cases=(), repeats=0)
