"""Warp state and packing tests."""

import pytest

from repro.gpu.warp import Warp, pack_warps
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def make_trace(ray_id, steps):
    trace = RayTrace(ray_id=ray_id, pixel=0, kind=RayKind.PRIMARY)
    for _ in range(steps):
        trace.steps.append(
            Step(address=0, size_bytes=32, kind=NodeKind.INTERNAL,
                 tests=1, pushes=[], popped=False)
        )
    return trace


def test_pack_full_warp():
    warps = pack_warps([make_trace(i, 1) for i in range(32)])
    assert len(warps) == 1
    assert warps[0].lane_count == 32
    assert all(t is not None for t in warps[0].traces)


def test_pack_pads_partial_warp():
    warps = pack_warps([make_trace(i, 1) for i in range(40)])
    assert len(warps) == 2
    assert warps[1].traces[8:] == [None] * 24


def test_pack_preserves_order():
    warps = pack_warps([make_trace(i, 1) for i in range(64)])
    assert warps[0].traces[0].ray_id == 0
    assert warps[1].traces[0].ray_id == 32


def test_warp_ids_sequential():
    warps = pack_warps([make_trace(i, 1) for i in range(70)])
    assert [w.warp_id for w in warps] == [0, 1, 2]


def test_lane_activity_tracking():
    warp = pack_warps([make_trace(0, 2), make_trace(1, 1)])[0]
    assert warp.lane_active(0)
    assert warp.lane_active(1)
    assert not warp.lane_active(2)  # padding
    warp.advance(0)
    warp.advance(1)
    assert warp.lane_active(0)
    assert not warp.lane_active(1)


def test_active_lanes_and_done():
    warp = pack_warps([make_trace(0, 1)])[0]
    assert warp.active_lanes() == [0]
    assert not warp.done
    warp.advance(0)
    assert warp.done


def test_current_step_advances():
    trace = make_trace(0, 3)
    trace.steps[1].tests = 99
    warp = pack_warps([trace])[0]
    warp.advance(0)
    assert warp.current_step(0).tests == 99


def test_total_steps():
    warp = pack_warps([make_trace(0, 3), make_trace(1, 2)])[0]
    assert warp.total_steps == 5


def test_empty_input():
    assert pack_warps([]) == []


def test_custom_warp_size():
    warps = pack_warps([make_trace(i, 1) for i in range(10)], warp_size=4)
    assert len(warps) == 3
    assert warps[0].lane_count == 4
