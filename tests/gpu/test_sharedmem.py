"""Banked shared-memory model tests."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.sharedmem import SharedMemorySim
from repro.stack.ops import MemoryOp, MemSpace, OpKind


@pytest.fixture
def sim():
    return SharedMemorySim(GPUConfig())


def op(address):
    return MemoryOp(MemSpace.SHARED, OpKind.LOAD, address)


def test_no_ops_no_cost(sim):
    counters = Counters()
    assert sim.transaction_cycles([], counters) == 0
    assert counters.shared_transactions == 0


def test_conflict_free_access(sim):
    # 16 lanes at 8-byte entries across distinct bank pairs.
    ops = [op(i * 8) for i in range(16)]
    assert sim.conflict_degree(ops) == 1


def test_same_bank_different_words_conflict(sim):
    # Rows are 128 bytes: same offset in different rows = same banks.
    ops = [op(0), op(128)]
    assert sim.conflict_degree(ops) == 2


def test_worst_case_degree(sim):
    ops = [op(row * 128) for row in range(16)]
    assert sim.conflict_degree(ops) == 16


def test_single_op_degree_one(sim):
    assert sim.conflict_degree([op(64)]) == 1


def test_transaction_cost_includes_penalty(sim):
    config = sim.config
    counters = Counters()
    cost = sim.transaction_cycles([op(0), op(128)], counters)
    assert cost == config.shared_latency + config.bank_conflict_penalty
    assert counters.bank_conflict_delay_cycles == config.bank_conflict_penalty


def test_conflict_free_cost_is_latency(sim):
    counters = Counters()
    cost = sim.transaction_cycles([op(i * 8) for i in range(8)], counters)
    assert cost == sim.config.shared_latency
    assert counters.bank_conflict_delay_cycles == 0


def test_counters_accumulate(sim):
    counters = Counters()
    sim.transaction_cycles([op(0), op(128)], counters)
    sim.transaction_cycles([op(0), op(128), op(256)], counters)
    penalty = sim.config.bank_conflict_penalty
    assert counters.shared_transactions == 2
    assert counters.bank_conflict_delay_cycles == penalty + 2 * penalty


def test_bank_histogram(sim):
    hist = sim.bank_histogram([op(0), op(128)])
    assert hist[0] == 2  # two distinct words in bank 0
    assert hist[1] == 2  # 8-byte entries span two banks
    assert sum(hist) == 4


def test_skewed_addresses_reduce_degree(sim):
    """The optimization's premise, at the address level."""
    from repro.stack.layout import SharedStackLayout
    from repro.stack.skew import base_entry_index

    layout = SharedStackLayout(entries=8)
    lanes = range(0, 32, 2)  # even lanes share banks
    plain = [op(layout.entry_address(lane, 0)) for lane in lanes]
    skewed = [
        op(layout.entry_address(lane, base_entry_index(lane, 8)))
        for lane in lanes
    ]
    assert sim.conflict_degree(plain) == 16
    assert sim.conflict_degree(skewed) == 2
