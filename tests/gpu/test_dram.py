"""DRAM queue model tests."""

import pytest

from repro.errors import ConfigError
from repro.gpu.dram import Dram, sectors_for


def test_read_latency():
    dram = Dram(latency=100, service_cycles=4)
    assert dram.read(0) == 100


def test_back_to_back_reads_queue():
    dram = Dram(latency=100, service_cycles=4)
    first = dram.read(0, sectors=4)
    second = dram.read(0, sectors=4)
    assert first == 100
    assert second == 116  # waits 4 sectors x 4 cycles before starting


def test_spaced_reads_do_not_queue():
    dram = Dram(latency=100, service_cycles=4)
    dram.read(0, sectors=1)
    assert dram.read(1000) == 1100


def test_small_sector_cheaper_than_line():
    dram = Dram(latency=100, service_cycles=4)
    dram.read(0, sectors=1)
    after_small = dram.read(0, sectors=1)
    dram.reset()
    dram.read(0, sectors=4)
    after_line = dram.read(0, sectors=1)
    assert after_small < after_line


def test_write_consumes_bandwidth():
    dram = Dram(latency=100, service_cycles=4)
    dram.write(0, sectors=4)
    read_done = dram.read(0, sectors=4)
    assert read_done == 116  # read waited for the write's sectors


def test_counters():
    dram = Dram()
    dram.read(0)
    dram.read(0)
    dram.write(0)
    assert dram.reads == 2
    assert dram.writes == 1


def test_reset():
    dram = Dram(latency=100, service_cycles=4)
    dram.read(0)
    dram.reset()
    assert dram.reads == 0
    assert dram.read(0) == 100


def test_invalid_params():
    with pytest.raises(ConfigError):
        Dram(latency=-1)
    with pytest.raises(ConfigError):
        Dram(service_cycles=0)


def test_sectors_for():
    assert sectors_for(8) == 1
    assert sectors_for(32) == 1
    assert sectors_for(33) == 2
    assert sectors_for(128) == 4
    assert sectors_for(0) == 1
