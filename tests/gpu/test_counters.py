"""Counter arithmetic tests."""

import pytest

from repro.gpu.counters import Counters


def test_ipc_zero_cycles():
    assert Counters().ipc == 0.0


def test_ipc_division():
    counters = Counters(instructions=100, cycles=50)
    assert counters.ipc == 2.0


def test_offchip_sums_reads_and_writes():
    counters = Counters(dram_reads=3, dram_writes=4)
    assert counters.offchip_accesses == 7


def test_stack_op_aggregates():
    counters = Counters(
        stack_global_loads=1,
        stack_global_stores=2,
        stack_shared_loads=3,
        stack_shared_stores=4,
    )
    assert counters.stack_global_ops == 3
    assert counters.stack_shared_ops == 7


def test_l1_hit_rate():
    counters = Counters(l1_hits=3, l1_misses=1)
    assert counters.l1_hit_rate == 0.75
    assert Counters().l1_hit_rate == 0.0


def test_add_accumulates_and_maxes_cycles():
    a = Counters(instructions=10, cycles=100, dram_reads=1)
    b = Counters(instructions=5, cycles=200, dram_reads=2)
    a.add(b)
    assert a.instructions == 15
    assert a.cycles == 200  # max, not sum
    assert a.dram_reads == 3


def test_as_dict_includes_derived():
    data = Counters(instructions=10, cycles=5).as_dict()
    assert data["ipc"] == 2.0
    assert "offchip_accesses" in data
    assert data["instructions"] == 10
