"""Property tests for the vector backend's derived data structures.

Two oracles, both dead-simple Python:

* :func:`pack_trace` / :func:`unpack_trace` must round-trip any step
  stream losslessly, and :func:`batch_warp_state`'s whole-warp numpy
  reductions must equal the per-lane loop they replace.
* :class:`LazyL1` (the O(1)-pollution L1 mirror) must be
  observationally identical to a textbook clean LRU in which every
  pollution burst is spelled out as individual never-probed-again
  inserts — hit/miss per probe, occupancy, and the resident tracked
  line set all match after every operation.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.vector.lru import LazyL1
from repro.gpu.vector.soa import batch_warp_state, pack_trace, unpack_trace
from repro.trace.events import NodeKind, RayKind, RayTrace, Step

steps_strategy = st.lists(
    st.builds(
        Step,
        address=st.integers(min_value=0, max_value=2**20),
        size_bytes=st.integers(min_value=1, max_value=256),
        kind=st.sampled_from([NodeKind.INTERNAL, NodeKind.LEAF]),
        tests=st.integers(min_value=0, max_value=8),
        pushes=st.lists(
            st.integers(min_value=0, max_value=2**20), max_size=4
        ),
        popped=st.booleans(),
    ),
    max_size=40,
)


def make_trace(steps, ray_id=3):
    return RayTrace(
        ray_id=ray_id, pixel=7, kind=RayKind.SHADOW, steps=steps,
        hit_prim=5, hit_t=1.5,
    )


# -- pack/unpack round-trip ---------------------------------------------


@settings(max_examples=150, deadline=None)
@given(steps_strategy)
def test_pack_unpack_round_trip(steps):
    trace = make_trace(steps)
    soa = pack_trace(trace)
    rebuilt = unpack_trace(
        soa, ray_id=3, pixel=7, kind=RayKind.SHADOW, hit_prim=5, hit_t=1.5
    )
    assert rebuilt == trace
    expected_max_end = max(
        (s.address + s.size_bytes for s in steps), default=0
    )
    assert soa.max_end == expected_max_end


def test_pack_trace_caches_on_the_trace():
    trace = make_trace([Step(0, 64, NodeKind.LEAF, 2, [], False)])
    assert pack_trace(trace) is pack_trace(trace)


# -- warp batching vs the per-lane loop ---------------------------------


@settings(max_examples=100, deadline=None)
@given(st.lists(st.one_of(st.none(), steps_strategy), max_size=8))
def test_batch_warp_state_matches_lane_loop(lane_steps):
    traces = [
        None if steps is None else make_trace(steps, ray_id=i)
        for i, steps in enumerate(lane_steps)
    ]
    state = batch_warp_state(traces)
    populated = [
        i for i, t in enumerate(traces) if t is not None and t.steps
    ]
    assert state.lanes == populated
    length = max((len(traces[i].steps) for i in populated), default=0)
    assert state.n_iters == length
    for k in range(length):
        box_max = tri_max = instructions = 0
        for row, lane in enumerate(populated):
            steps = traces[lane].steps
            active = k < len(steps)
            assert bool(state.active[row, k]) == active
            if not active:
                continue
            step = steps[k]
            instructions += 1 + step.tests
            if step.kind is NodeKind.INTERNAL:
                box_max = max(box_max, step.tests)
            else:
                tri_max = max(tri_max, step.tests)
            depth = sum(
                len(s.pushes) - int(s.popped) for s in steps[: k + 1]
            )
            assert int(state.depth[row, k]) == depth
            assert int(state.pending_ops[row, k]) == (
                len(step.pushes) + int(step.popped)
            )
        assert int(state.box_max[k]) == box_max
        assert int(state.tri_max[k]) == tri_max
        assert int(state.instructions[k]) == instructions


def test_batch_warp_state_empty_warp():
    state = batch_warp_state([None, None])
    assert state.lanes == [] and state.n_iters == 0 and state.max_end == 0


# -- LazyL1 vs spelled-out clean LRU ------------------------------------

#: A foreign (pollution) line id base far above any real line the ops
#: strategy can generate, so the reference can tell the populations
#: apart when checking the tracked-resident set.
FOREIGN_BASE = 10**9


class SpelledOutLru:
    """Clean fully-associative LRU; pollution as individual inserts."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.lines = OrderedDict()
        self.foreign_seq = 0

    def access(self, line):
        if line in self.lines:
            self.lines.move_to_end(line)
            return True
        if len(self.lines) >= self.capacity:
            self.lines.popitem(last=False)
        self.lines[line] = True
        return False

    def pollute(self, count):
        for _ in range(count):
            self.access(FOREIGN_BASE + self.foreign_seq)
            self.foreign_seq += 1

    def tracked_lines(self):
        return {line for line in self.lines if line < FOREIGN_BASE}


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(min_value=0, max_value=15)),
        st.tuples(st.just("pollute"), st.integers(min_value=1, max_value=4)),
    ),
    max_size=300,
)


@settings(max_examples=200, deadline=None)
@given(ops_strategy, st.integers(min_value=4, max_value=16))
def test_lazy_l1_matches_spelled_out_lru(ops, capacity):
    lazy = LazyL1(capacity)
    reference = SpelledOutLru(capacity)
    for op, value in ops:
        if op == "access":
            hit = lazy.hit(value)
            if not hit:
                lazy.insert(value)
            assert hit == reference.access(value)
        else:
            # The pollute contract requires count <= capacity (checked
            # at plan build); the strategy bounds count at 4 <= cap.
            lazy.pollute(value)
            reference.pollute(value)
        assert lazy.occupancy == len(reference.lines)
        assert lazy.resident_lines() == reference.tracked_lines()
