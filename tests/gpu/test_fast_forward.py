"""Event-driven fast-forward must be bit-identical to the stepped loop.

``GPUSimulator(fast_forward=True)`` (the default) lets an RT unit drain a
sole resident warp without per-iteration arbitration; the claim is that
this changes *nothing* observable — every counter, per-SM cycle count and
stack statistic matches the fully stepped scheduler.  These tests compare
complete ``SimOutput`` payloads across representative stack
configurations, with and without the integrity guard.
"""

from dataclasses import asdict

import pytest

from repro.bvh.api import build_bvh
from repro.core.api import time_traces
from repro.core.presets import named_config
from repro.gpu.simulator import GPUSimulator
from repro.guard.config import GuardConfig
from repro.trace.path import generate_workload
from repro.workloads.lumibench import load_scene

CONFIGS = ["RB_8", "RB_FULL", "RB_8+SH_8", "RB_8+SH_8+SK+RA", "RB_4+SH_4"]


@pytest.fixture(scope="module")
def traces():
    bvh = build_bvh(load_scene("CRNVL"), width=6)
    workload = generate_workload(bvh, width=12, height=12, max_bounces=2, seed=0)
    return workload.all_traces


def _outputs(traces, config, **kwargs):
    stepped = GPUSimulator(
        config=config, fast_forward=False, **kwargs
    ).run_traces(traces)
    fast = GPUSimulator(
        config=config, fast_forward=True, **kwargs
    ).run_traces(traces)
    return stepped, fast


@pytest.mark.parametrize("name", CONFIGS)
def test_fast_forward_bit_identical(traces, name):
    stepped, fast = _outputs(traces, named_config(name))
    assert asdict(stepped.counters) == asdict(fast.counters)
    assert stepped.per_sm_cycles == fast.per_sm_cycles


def test_fast_forward_bit_identical_under_guard(traces):
    config = named_config("RB_8+SH_8")
    guard = GuardConfig(invariants=True, watchdog=True)
    stepped, fast = _outputs(traces, config, guard=guard)
    assert asdict(stepped.counters) == asdict(fast.counters)
    assert stepped.per_sm_cycles == fast.per_sm_cycles


def test_guarded_matches_unguarded_with_fast_forward(traces):
    # The guard disables the drain path (it must observe every step), yet
    # the numbers still match an unguarded fast-forward run: guards
    # observe without perturbing and fast-forward jumps without skipping.
    config = named_config("RB_8")
    guarded = GPUSimulator(
        config=config, guard=GuardConfig(invariants=True)
    ).run_traces(traces)
    plain = GPUSimulator(config=config).run_traces(traces)
    assert asdict(guarded.counters) == asdict(plain.counters)
    assert guarded.per_sm_cycles == plain.per_sm_cycles


def test_time_traces_exposes_flag(traces):
    result_fast = time_traces(traces, config=named_config("RB_8"))
    result_stepped = time_traces(
        traces, config=named_config("RB_8"), fast_forward=False
    )
    assert asdict(result_fast.counters) == asdict(result_stepped.counters)
