"""GTO scheduling behaviour of the RT unit."""

import pytest

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.gpu.warp import pack_warps
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def make_unit(config=None):
    config = config or GPUConfig()
    l2 = Cache(size_bytes=config.l2_bytes, line_bytes=128, assoc=16)
    dram = Dram(latency=config.dram_latency, service_cycles=4)
    counters = Counters()
    return (
        RTUnit(config, MemoryHierarchy(config, l2=l2, dram=dram), counters),
        counters,
    )


def linear_trace(ray_id, steps, base=0x1000, stride=4096):
    trace = RayTrace(ray_id=ray_id, pixel=0, kind=RayKind.PRIMARY)
    for i in range(steps):
        trace.steps.append(
            Step(address=base + i * stride, size_bytes=64,
                 kind=NodeKind.INTERNAL, tests=2, pushes=[], popped=False)
        )
    return trace


def test_order_of_execution_tracked():
    """Record the scheduling order: GTO sticks to one warp when ready."""
    unit, _ = make_unit(GPUConfig(max_warps_per_rt_unit=2))
    order = []
    original = unit._execute_iteration

    def spy(warp, stack, start):
        order.append(warp.warp_id)
        return original(warp, stack, start)

    unit._execute_iteration = spy
    traces = [linear_trace(i, 4) for i in range(64)]  # 2 warps x 4 steps
    unit.run(pack_warps(traces))
    assert len(order) == 8
    assert set(order) == {0, 1}
    # Warps interleave (memory waits force switches) — warp 0 is first.
    assert order[0] == 0


def test_all_warps_make_progress():
    unit, counters = make_unit(GPUConfig(max_warps_per_rt_unit=4))
    traces = [linear_trace(i, 3, base=0x1000 + i * 65536) for i in range(128)]
    unit.run(pack_warps(traces))
    assert counters.warp_steps == 4 * 3


def test_queued_warps_admitted_after_completion():
    config = GPUConfig(max_warps_per_rt_unit=1)
    unit, counters = make_unit(config)
    traces = [linear_trace(i, 2) for i in range(96)]  # 3 warps, 1 slot
    completion = unit.run(pack_warps(traces))
    assert counters.warp_steps == 6
    assert completion > 0


def test_single_warp_serializes():
    """With one slot, total time is at least the sum of step times."""
    from repro.gpu.warp import Warp

    def four_warps():
        return [
            Warp(
                warp_id=w,
                traces=[linear_trace(w, 10, base=0x1000 + w * (1 << 20))]
                + [None] * 31,
            )
            for w in range(4)
        ]

    config1 = GPUConfig(max_warps_per_rt_unit=1)
    config4 = GPUConfig(max_warps_per_rt_unit=4)
    unit1, _ = make_unit(config1)
    serial = unit1.run(four_warps())
    unit4, _ = make_unit(config4)
    overlapped = unit4.run(four_warps())
    assert overlapped < serial


def test_empty_warp_rejected():
    from repro.errors import SimulationError
    from repro.gpu.warp import Warp

    unit, _ = make_unit()
    empty = Warp(warp_id=0, traces=[None] * 32)
    with pytest.raises(SimulationError):
        unit._execute_iteration(empty, unit._stacks[0], 0)
