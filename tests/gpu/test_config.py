"""GPU configuration tests."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig, KB


def test_defaults_match_table1_organization():
    config = GPUConfig()
    assert config.num_sms == 8
    assert config.warp_size == 32
    assert config.max_warps_per_rt_unit == 4
    assert config.rb_stack_entries == 8
    assert config.unified_cache_bytes == 64 * KB


def test_shared_carveout_zero_without_sh_stack():
    config = GPUConfig(sh_stack_entries=0)
    assert config.shared_memory_bytes == 0
    assert config.l1d_bytes == 64 * KB


def test_paper_sram_split_8kb():
    """Paper IV-B: SH_8 -> 8 KB shared + 56 KB L1D."""
    config = GPUConfig(sh_stack_entries=8)
    assert config.shared_memory_bytes == 8 * KB
    assert config.l1d_bytes == 56 * KB


def test_sh16_doubles_carveout():
    config = GPUConfig(sh_stack_entries=16)
    assert config.shared_memory_bytes == 16 * KB
    assert config.l1d_bytes == 48 * KB


def test_l1d_override():
    config = GPUConfig(l1d_bytes_override=128 * KB)
    assert config.l1d_bytes == 128 * KB


def test_full_stack_config():
    config = GPUConfig(rb_stack_entries=None)
    assert config.describe() == "RB_FULL"


def test_describe_labels():
    assert GPUConfig().describe() == "RB_8"
    assert GPUConfig(rb_stack_entries=4).describe() == "RB_4"
    assert GPUConfig(sh_stack_entries=8).describe() == "RB_8+SH_8"
    assert (
        GPUConfig(sh_stack_entries=8, skewed_bank_access=True).describe()
        == "RB_8+SH_8+SK"
    )
    assert (
        GPUConfig(
            sh_stack_entries=8, skewed_bank_access=True, intra_warp_realloc=True
        ).describe()
        == "RB_8+SH_8+SK+RA"
    )


def test_with_creates_modified_copy():
    base = GPUConfig()
    changed = base.with_(rb_stack_entries=16)
    assert changed.rb_stack_entries == 16
    assert base.rb_stack_entries == 8


def test_threads_per_rt_unit():
    assert GPUConfig().threads_per_rt_unit == 128


def test_invalid_rb_entries():
    with pytest.raises(ConfigError):
        GPUConfig(rb_stack_entries=0)


def test_full_stack_with_sh_rejected():
    with pytest.raises(ConfigError):
        GPUConfig(rb_stack_entries=None, sh_stack_entries=8)


def test_sh_stack_cannot_exceed_sram():
    with pytest.raises(ConfigError):
        GPUConfig(sh_stack_entries=1024)


def test_invalid_spill_policy():
    with pytest.raises(ConfigError):
        GPUConfig(spill_cache_policy="bogus")


def test_negative_sh_entries_rejected():
    with pytest.raises(ConfigError):
        GPUConfig(sh_stack_entries=-1)
