"""Vector timing core ≡ stepped oracle: whole-output bit identity.

The vector backend (``GPUSimulator(backend="vector")``) replays
precomputed warp plans through numpy-batched stepping; its contract is
that *nothing* observable changes — every integer counter and every
per-SM cycle count matches the stepped reference loop exactly.  These
tests sweep the full LumiBench scene catalogue under the two headline
configurations, cross it with the guard and fast-forward axes, cover
the supported spill policies and traversal strategies, and pin the
fallback behavior: any run outside the vector validity envelope
silently degrades to the stepped core and records that in
``SimOutput.backend``.
"""

from dataclasses import asdict, replace

import pytest

from repro.bvh.api import build_bvh
from repro.core.presets import named_config
from repro.gpu.simulator import GPUSimulator
from repro.guard.config import GuardConfig
from repro.trace.path import generate_workload
from repro.traversal.registry import resolve_strategy
from repro.workloads.lumibench import SCENE_NAMES, load_scene

CONFIGS = ["RB_8", "RB_8+SH_8+SK+RA"]

# Traces are strategy- and config-independent (phase one), so one small
# workload per scene serves every test in the module.
_TRACES = {}


def traces_for(scene):
    cached = _TRACES.get(scene)
    if cached is None:
        bvh = build_bvh(load_scene(scene))
        workload = generate_workload(
            bvh, width=8, height=8, max_bounces=2, seed=0
        )
        cached = _TRACES[scene] = workload.all_traces
    return cached


def assert_identical(reference, candidate):
    """Every counter field and every per-SM cycle count must match."""
    assert asdict(reference.counters) == asdict(candidate.counters)
    assert reference.per_sm_cycles == candidate.per_sm_cycles


def run(traces, config, backend, **kwargs):
    return GPUSimulator(config=config, backend=backend, **kwargs).run_traces(
        traces
    )


@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("scene", SCENE_NAMES)
def test_vector_bit_identical_across_catalogue(scene, config_name):
    traces = traces_for(scene)
    config = named_config(config_name)
    stepped = run(traces, config, "stepped")
    vector = run(traces, config, "vector")
    # The headline configs are inside the validity envelope: the vector
    # core must actually execute, not silently fall back.
    assert vector.backend == "vector"
    assert stepped.backend == "stepped"
    assert_identical(stepped, vector)


@pytest.mark.parametrize("fast_forward", [True, False])
def test_vector_matches_both_scheduler_modes(fast_forward):
    """stepped ≡ fast-forward ≡ vector: the three-way oracle."""
    traces = traces_for("CRNVL")
    config = named_config("RB_8+SH_8+SK+RA")
    stepped = run(traces, config, "stepped", fast_forward=fast_forward)
    vector = run(traces, config, "vector", fast_forward=fast_forward)
    assert vector.backend == "vector"
    assert_identical(stepped, vector)


def test_guarded_vector_request_falls_back_and_matches():
    """Guards need the stepped observer; the fallback is bit-identical."""
    traces = traces_for("CRNVL")
    config = named_config("RB_8+SH_8")
    guard = GuardConfig(invariants=True, watchdog=True)
    stepped = run(traces, config, "stepped", guard=guard)
    vector = run(traces, config, "vector", guard=guard)
    assert vector.backend == "stepped"
    assert_identical(stepped, vector)


def test_l2_spill_policy_is_supported():
    traces = traces_for("BUNNY")
    config = replace(
        named_config("RB_4+SH_4"), spill_cache_policy="l2"
    )
    stepped = run(traces, config, "stepped")
    vector = run(traces, config, "vector")
    assert vector.backend == "vector"
    assert_identical(stepped, vector)


def test_l1_spill_policy_falls_back():
    """L1-cached spills dirty the lazy L1 mirror — out of envelope."""
    traces = traces_for("BUNNY")
    config = replace(named_config("RB_4+SH_4"), spill_cache_policy="l1")
    stepped = run(traces, config, "stepped")
    vector = run(traces, config, "vector")
    assert vector.backend == "stepped"
    assert_identical(stepped, vector)


def test_inter_warp_realloc_falls_back():
    traces = traces_for("CRNVL")
    config = replace(
        named_config("RB_8+SH_8+SK+RA"), inter_warp_realloc=True
    )
    stepped = run(traces, config, "stepped")
    vector = run(traces, config, "vector")
    assert vector.backend == "stepped"
    assert_identical(stepped, vector)


@pytest.mark.parametrize("strategy", ["sms", "stackless", "reorder"])
def test_vector_bit_identical_per_strategy(strategy):
    """Each traversal strategy's own workload times identically."""
    bvh = build_bvh(load_scene("CRNVL"))
    workload = resolve_strategy(strategy).build_workload(
        bvh, width=8, height=8, spp=1, max_bounces=2, seed=0
    )
    traces = workload.all_traces
    config = named_config("RB_8+SH_8")
    stepped = run(traces, config, "stepped", strategy=strategy)
    vector = run(traces, config, "vector", strategy=strategy)
    assert_identical(stepped, vector)


def test_empty_workload():
    config = named_config("RB_8")
    stepped = run([], config, "stepped")
    vector = run([], config, "vector")
    assert_identical(stepped, vector)


def test_unknown_backend_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        GPUSimulator(backend="warp-drive")
