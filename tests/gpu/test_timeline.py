"""Timeline recording and Chrome-trace export tests."""

import json

import pytest

from repro.core.presets import baseline_config
from repro.gpu.timeline import Timeline, TimelineEvent, record_timeline


@pytest.fixture(scope="module")
def timeline(deep_workload):
    return record_timeline(deep_workload.all_traces, baseline_config())


def test_events_recorded(timeline):
    assert timeline.events
    assert timeline.total_cycles > 0


def test_events_well_formed(timeline):
    for event in timeline.events:
        assert event.end >= event.start
        assert 1 <= event.active_lanes <= 32
        assert event.duration >= 1


def test_warp_events_sequential(timeline):
    """One warp's iterations never overlap themselves."""
    warp_ids = {e.warp_id for e in timeline.events}
    for warp_id in warp_ids:
        events = timeline.events_for_warp(warp_id)
        for a, b in zip(events, events[1:]):
            assert a.start <= b.start


def test_concurrency_bounded_by_slots(timeline):
    """At most max_warps_per_rt_unit warps in flight at once."""
    probe_points = [e.start for e in timeline.events[::7]]
    for cycle in probe_points:
        assert timeline.concurrency_at(cycle) <= 4


def test_latency_hiding_visible(timeline):
    """At least sometimes, multiple warps overlap in time."""
    overlaps = max(
        timeline.concurrency_at(e.start) for e in timeline.events
    )
    assert overlaps >= 2


def test_chrome_trace_format(timeline):
    trace = timeline.to_chrome_trace()
    assert "traceEvents" in trace
    event = trace["traceEvents"][0]
    assert event["ph"] == "X"
    assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}


def test_save_roundtrip(timeline, tmp_path):
    path = timeline.save(tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == len(timeline.events)


def test_empty_timeline():
    timeline = Timeline()
    assert timeline.total_cycles == 0
    assert timeline.to_chrome_trace()["traceEvents"] == []
    assert timeline.concurrency_at(0) == 0


def test_event_duration_floor():
    event = TimelineEvent(
        warp_id=0, sm_id=0, start=5, end=5, active_lanes=1, stack_ops=0
    )
    assert event.duration == 1
