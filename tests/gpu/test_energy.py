"""Energy model tests."""

import pytest

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.gpu.counters import Counters
from repro.gpu.energy import EnergyModel, compare_energy, estimate_energy
from repro.gpu.simulator import GPUSimulator


def test_empty_counters_only_static():
    report = estimate_energy(Counters())
    assert report.total_nj == 0.0


def test_static_scales_with_cycles():
    a = estimate_energy(Counters(cycles=1000))
    b = estimate_energy(Counters(cycles=2000))
    assert b.breakdown_nj["static"] == pytest.approx(2 * a.breakdown_nj["static"])


def test_dram_dominates_per_access():
    model = EnergyModel()
    one_dram = estimate_energy(Counters(dram_reads=1), model)
    one_shared = estimate_energy(Counters(stack_shared_loads=1), model)
    assert one_dram.total_nj > 50 * one_shared.total_nj


def test_stack_energy_split():
    counters = Counters(
        stack_global_loads=10, stack_global_stores=10,
        dram_reads=15, dram_writes=5,
        stack_shared_loads=7,
    )
    report = estimate_energy(counters)
    assert report.breakdown_nj["stack_global_dram"] > 0
    assert report.breakdown_nj["stack_shared"] > 0
    assert report.stack_nj == pytest.approx(
        report.breakdown_nj["stack_global_dram"]
        + report.breakdown_nj["stack_shared"]
    )


def test_stack_dram_capped_by_offchip():
    # More stack ops than DRAM transactions (cached spills): the stack
    # share cannot exceed total off-chip accesses.
    counters = Counters(stack_global_loads=100, dram_reads=10)
    report = estimate_energy(counters)
    node = report.breakdown_nj["node_dram"]
    assert node == 0.0


def test_summary_includes_total():
    report = estimate_energy(Counters(cycles=100, l1_hits=10))
    assert "TOTAL" in report.summary()


def test_compare_energy_ratios():
    a = estimate_energy(Counters(dram_reads=10))
    b = estimate_energy(Counters(dram_reads=20))
    ratios = compare_energy({"a": a, "b": b}, baseline="a")
    assert ratios["a"] == pytest.approx(1.0)
    assert ratios["b"] == pytest.approx(2.0)


def test_sms_saves_energy_end_to_end(deep_workload):
    """Converting spill traffic to shared memory must cut energy."""
    traces = deep_workload.all_traces
    model = EnergyModel()
    base = estimate_energy(
        GPUSimulator(baseline_config(rb_entries=4)).run_traces(traces).counters,
        model,
    )
    sms = estimate_energy(
        GPUSimulator(sms_config(rb_entries=4)).run_traces(traces).counters,
        model,
    )
    assert sms.total_nj < base.total_nj
    assert sms.stack_nj < base.stack_nj


def test_full_stack_minimizes_stack_energy(deep_workload):
    traces = deep_workload.all_traces
    full = estimate_energy(
        GPUSimulator(full_stack_config()).run_traces(traces).counters
    )
    assert full.stack_nj == 0.0
