"""RT unit execution tests."""

import pytest

from repro.errors import SimulationError
from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy
from repro.gpu.rt_unit import RTUnit
from repro.gpu.warp import pack_warps
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def make_unit(config=None):
    config = config or GPUConfig()
    l2 = Cache(size_bytes=config.l2_bytes, line_bytes=128, assoc=16)
    dram = Dram(latency=config.dram_latency, service_cycles=4)
    hierarchy = MemoryHierarchy(config, l2=l2, dram=dram)
    counters = Counters()
    return RTUnit(config, hierarchy, counters), counters


def linear_trace(ray_id, addresses):
    """A trace that visits a chain of nodes with no stack activity."""
    trace = RayTrace(ray_id=ray_id, pixel=0, kind=RayKind.PRIMARY)
    for address in addresses:
        trace.steps.append(
            Step(address=address, size_bytes=64, kind=NodeKind.INTERNAL,
                 tests=2, pushes=[], popped=False)
        )
    return trace


def push_pop_trace(ray_id, depth):
    """Push `depth` entries then pop them all back (visiting each)."""
    trace = RayTrace(ray_id=ray_id, pixel=0, kind=RayKind.PRIMARY)
    base = 0x1000_0000
    # One step pushing all addresses (children far-to-near).
    addresses = [base + 64 * (i + 1) for i in range(depth)]
    trace.steps.append(
        Step(address=base, size_bytes=64, kind=NodeKind.INTERNAL,
             tests=depth, pushes=list(addresses), popped=True)
    )
    for i, address in enumerate(reversed(addresses)):
        trace.steps.append(
            Step(address=address, size_bytes=64, kind=NodeKind.LEAF,
                 tests=1, pushes=[], popped=i < depth - 1)
        )
    return trace


def test_runs_simple_warp_to_completion():
    unit, counters = make_unit()
    warps = pack_warps([linear_trace(0, [0x1000, 0x2000, 0x3000])])
    cycles = unit.run(warps)
    assert cycles > 0
    assert counters.warp_steps == 3
    assert counters.instructions == 3 * 3  # (1 + tests) per step


def test_counts_node_fetch_lines():
    unit, counters = make_unit()
    warps = pack_warps([linear_trace(0, [0x1000])])
    unit.run(warps)
    assert counters.node_fetch_lines == 1


def test_pop_verification_catches_corruption():
    unit, counters = make_unit()
    trace = push_pop_trace(0, 3)
    trace.steps[1].address = 0xDEAD  # corrupt: popped value won't match
    with pytest.raises(SimulationError):
        unit.run(pack_warps([trace]))


def test_push_pop_trace_valid():
    unit, counters = make_unit()
    unit.run(pack_warps([push_pop_trace(0, 5)]))
    assert counters.warp_steps == 6


def test_deep_trace_generates_stack_traffic():
    config = GPUConfig(rb_stack_entries=2)
    unit, counters = make_unit(config)
    unit.run(pack_warps([push_pop_trace(0, 10)]))
    assert counters.stack_global_ops > 0


def test_sms_routes_traffic_to_shared():
    config = GPUConfig(rb_stack_entries=2, sh_stack_entries=16)
    unit, counters = make_unit(config)
    unit.run(pack_warps([push_pop_trace(0, 10)]))
    assert counters.stack_shared_ops > 0
    assert counters.stack_global_ops == 0


def test_full_stack_no_traffic():
    config = GPUConfig(rb_stack_entries=None)
    unit, counters = make_unit(config)
    unit.run(pack_warps([push_pop_trace(0, 30)]))
    assert counters.stack_global_ops == 0
    assert counters.stack_shared_ops == 0


def test_multiple_warps_complete():
    unit, counters = make_unit()
    traces = [linear_trace(i, [0x1000 + 64 * i]) for i in range(80)]
    cycles = unit.run(pack_warps(traces))
    assert cycles > 0
    assert counters.instructions == 80 * 3


def test_more_warps_than_slots_queue():
    config = GPUConfig(max_warps_per_rt_unit=2)
    unit, counters = make_unit(config)
    traces = [linear_trace(i, [0x1000]) for i in range(32 * 5)]
    unit.run(pack_warps(traces))
    assert counters.warp_steps == 5


def test_divergent_lane_lengths():
    unit, counters = make_unit()
    traces = [linear_trace(0, [0x1000] * 5), linear_trace(1, [0x2000])]
    unit.run(pack_warps(traces))
    assert counters.warp_steps == 5


def test_coalescing_reduces_fetch_lines():
    unit, counters = make_unit()
    # 32 lanes visiting the same node: one line.
    traces = [linear_trace(i, [0x1000]) for i in range(32)]
    unit.run(pack_warps(traces))
    coalesced = counters.node_fetch_lines
    unit2, counters2 = make_unit()
    traces = [linear_trace(i, [0x1000 + i * 128]) for i in range(32)]
    unit2.run(pack_warps(traces))
    assert coalesced == 1
    assert counters2.node_fetch_lines == 32


def test_latency_overlap_across_warps():
    """4 resident warps must finish faster than 4x one warp."""
    config = GPUConfig()
    unit, _ = make_unit(config)
    one = unit.run(pack_warps([linear_trace(0, [0x1000 + i * 4096 for i in range(20)])]))
    unit4, _ = make_unit(config)
    traces = []
    for w in range(4):
        traces.extend(
            linear_trace(w * 32 + lane, [0x1000 + (w * 20 + i) * 4096 for i in range(20)])
            for lane in range(1)
        )
    four = unit4.run(pack_warps(traces))
    assert four < 4 * one


def test_realloc_stats_harvested():
    config = GPUConfig(
        rb_stack_entries=1, sh_stack_entries=1, intra_warp_realloc=True
    )
    unit, counters = make_unit(config)
    # Lane 1 finishes after one step; lane 0 warms up for two steps and
    # only then goes deep, so the idle stack is available to borrow.
    deep = push_pop_trace(0, 8)
    warmup = linear_trace(0, [0x8000, 0x8040])
    warmup.steps.extend(deep.steps)
    traces = [warmup, linear_trace(1, [0x9000])]
    unit.run(pack_warps(traces))
    assert counters.borrows >= 1
