"""Cache model tests."""

import pytest

from repro.errors import ConfigError
from repro.gpu.cache import Cache


def test_miss_then_hit():
    cache = Cache(size_bytes=1024, line_bytes=128)
    assert not cache.access(0).hit
    assert cache.access(0).hit
    assert cache.access(64).hit  # same line


def test_distinct_lines_miss():
    cache = Cache(size_bytes=1024, line_bytes=128)
    cache.access(0)
    assert not cache.access(128).hit


def test_lru_eviction_order():
    cache = Cache(size_bytes=2 * 128, line_bytes=128)  # 2 lines
    cache.access(0)
    cache.access(128)
    cache.access(0)        # 0 is now most recent
    cache.access(256)      # evicts 128
    assert cache.contains(0)
    assert not cache.contains(128)
    assert cache.contains(256)


def test_dirty_eviction_reported():
    cache = Cache(size_bytes=128, line_bytes=128)  # 1 line
    cache.access(0, is_store=True)
    result = cache.access(128)
    assert result.evicted_dirty_line == 0


def test_clean_eviction_not_reported():
    cache = Cache(size_bytes=128, line_bytes=128)
    cache.access(0, is_store=False)
    result = cache.access(128)
    assert result.evicted_dirty_line is None


def test_store_marks_existing_line_dirty():
    cache = Cache(size_bytes=128, line_bytes=128)
    cache.access(0, is_store=False)
    cache.access(0, is_store=True)
    result = cache.access(128)
    assert result.evicted_dirty_line == 0


def test_set_associative_mapping():
    # 4 lines, 2-way: two sets.  Lines 0 and 256 map to set 0.
    cache = Cache(size_bytes=4 * 128, line_bytes=128, assoc=2)
    cache.access(0)
    cache.access(256)
    cache.access(512)  # also set 0 -> evicts line 0
    assert not cache.contains(0)
    assert cache.contains(256)
    assert cache.contains(512)
    # Set 1 untouched.
    cache.access(128)
    assert cache.contains(128)


def test_hit_miss_counters():
    cache = Cache(size_bytes=1024, line_bytes=128)
    cache.access(0)
    cache.access(0)
    cache.access(128)
    assert cache.misses == 2
    assert cache.hits == 1


def test_occupancy_and_flush():
    cache = Cache(size_bytes=1024, line_bytes=128)
    cache.access(0, is_store=True)
    cache.access(128)
    assert cache.occupancy() == 2
    assert cache.flush() == 1
    assert cache.occupancy() == 0


def test_line_address_alignment():
    cache = Cache(size_bytes=1024, line_bytes=128)
    assert cache.line_address(130) == 128
    assert cache.line_address(127) == 0


def test_invalid_configs():
    with pytest.raises(ConfigError):
        Cache(size_bytes=64, line_bytes=128)
    with pytest.raises(ConfigError):
        Cache(size_bytes=100, line_bytes=128)
    with pytest.raises(ConfigError):
        Cache(size_bytes=1024, line_bytes=128, assoc=3)


def test_fully_associative_uses_whole_capacity():
    cache = Cache(size_bytes=4 * 128, line_bytes=128)  # fully assoc
    for i in range(4):
        cache.access(i * 128)
    assert all(cache.contains(i * 128) for i in range(4))
    cache.access(4 * 128)
    assert not cache.contains(0)  # LRU of the whole cache
