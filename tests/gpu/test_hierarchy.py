"""Memory hierarchy path tests."""

import pytest

from repro.gpu.cache import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import Counters
from repro.gpu.dram import Dram
from repro.gpu.hierarchy import MemoryHierarchy


@pytest.fixture
def parts():
    config = GPUConfig()
    l2 = Cache(size_bytes=config.l2_bytes, line_bytes=128, assoc=16, name="L2")
    dram = Dram(latency=config.dram_latency, service_cycles=4)
    return config, MemoryHierarchy(config, l2=l2, dram=dram), Counters()


def test_cold_miss_goes_to_dram(parts):
    config, hierarchy, counters = parts
    done = hierarchy.access_line(0x1000, 0, is_store=False, counters=counters)
    assert counters.l1_misses == 1
    assert counters.l2_misses == 1
    assert counters.dram_reads == 1
    assert done >= config.l1_latency + config.l2_latency + config.dram_latency


def test_l1_hit_fast(parts):
    config, hierarchy, counters = parts
    hierarchy.access_line(0x1000, 0, is_store=False, counters=counters)
    done = hierarchy.access_line(0x1000, 1000, is_store=False, counters=counters)
    assert done == 1000 + config.l1_latency
    assert counters.l1_hits == 1


def test_l2_hit_medium(parts):
    config, hierarchy, counters = parts
    hierarchy.access_line(0x1000, 0, is_store=False, counters=counters)
    # Evict from L1 (fully assoc LRU) by streaming more lines than capacity.
    lines = hierarchy.l1.total_lines
    for i in range(lines):
        hierarchy.access_line(0x100000 + i * 128, 0, is_store=False, counters=counters)
    counters2 = Counters()
    # Probe late enough that the L2 port queue from the eviction stream
    # has drained, so the access sees pure L2-hit latency.
    done = hierarchy.access_line(0x1000, 100000, is_store=False, counters=counters2)
    assert counters2.l1_misses == 1
    assert counters2.l2_hits == 1
    assert done == 100000 + config.l1_latency + config.l2_latency


def test_dirty_l1_eviction_writes_back(parts):
    config, hierarchy, counters = parts
    hierarchy.access_line(0x1000, 0, is_store=True, counters=counters)
    lines = hierarchy.l1.total_lines
    for i in range(lines + 1):
        hierarchy.access_line(0x200000 + i * 128, 0, is_store=False, counters=counters)
    # The dirty line was written back into L2 (hit there now, no DRAM read).
    before_reads = counters.dram_reads
    counters2 = Counters()
    hierarchy.access_line(0x1000, 0, is_store=False, counters=counters2)
    assert counters2.l2_hits == 1
    assert counters.dram_reads == before_reads


def test_uncached_policy_goes_straight_to_dram(parts):
    config, hierarchy, counters = parts
    done = hierarchy.access_line(
        0x3000, 0, is_store=False, counters=counters, policy="uncached"
    )
    assert counters.l1_misses == 0
    assert counters.dram_reads == 1
    assert not hierarchy.l1.contains(0x3000)
    # Repeat access is again DRAM.
    hierarchy.access_line(0x3000, 0, is_store=False, counters=counters, policy="uncached")
    assert counters.dram_reads == 2


def test_uncached_store_bandwidth_only(parts):
    config, hierarchy, counters = parts
    done = hierarchy.access_line(
        0x3000, 0, is_store=True, counters=counters, policy="uncached"
    )
    assert counters.dram_writes == 1
    assert done <= config.l1_latency + config.l2_latency


def test_l2_policy_caches_in_l2_only(parts):
    config, hierarchy, counters = parts
    hierarchy.access_line(0x4000, 0, is_store=False, counters=counters, policy="l2")
    assert not hierarchy.l1.contains(0x4000)
    assert hierarchy.l2.contains(0x4000)
    counters2 = Counters()
    hierarchy.access_line(0x4000, 0, is_store=False, counters=counters2, policy="l2")
    assert counters2.l2_hits == 1
    assert counters2.dram_reads == 0


def test_lines_of_spanning_access(parts):
    _, hierarchy, _ = parts
    assert hierarchy.lines_of(0, 8) == [0]
    assert hierarchy.lines_of(120, 16) == [0, 128]
    assert hierarchy.lines_of(0, 256) == [0, 128]
    assert hierarchy.lines_of(0, 257) == [0, 128, 256]


def test_pollution_evicts_l1(parts):
    _, hierarchy, counters = parts
    hierarchy.access_line(0x1000, 0, is_store=False, counters=counters)
    hierarchy.pollute(hierarchy.l1.total_lines, 0, counters)
    assert not hierarchy.l1.contains(0x1000)


def test_pollution_writes_back_dirty_victims(parts):
    _, hierarchy, counters = parts
    hierarchy.access_line(0x1000, 0, is_store=True, counters=counters)
    hierarchy.pollute(hierarchy.l1.total_lines, 0, counters)
    # The dirty line must now live in L2.
    assert hierarchy.l2.contains(0x1000)
