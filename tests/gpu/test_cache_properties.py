"""Property-based cache tests: the model must behave as textbook LRU."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.cache import Cache

LINE = 128

# Access sequences over a small address space so evictions are frequent.
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=31),  # line index
        st.booleans(),                           # is_store
    ),
    max_size=300,
)


class ReferenceLru:
    """Dead-simple LRU reference (fully associative)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.lines = OrderedDict()

    def access(self, line, is_store):
        hit = line in self.lines
        evicted_dirty = None
        if hit:
            self.lines.move_to_end(line)
            if is_store:
                self.lines[line] = True
        else:
            if len(self.lines) >= self.capacity:
                victim, dirty = self.lines.popitem(last=False)
                if dirty:
                    evicted_dirty = victim
            self.lines[line] = is_store
        return hit, evicted_dirty


@settings(max_examples=200, deadline=None)
@given(accesses, st.integers(min_value=1, max_value=8))
def test_fully_associative_matches_reference(sequence, capacity_lines):
    cache = Cache(size_bytes=capacity_lines * LINE, line_bytes=LINE)
    reference = ReferenceLru(capacity_lines)
    for line_index, is_store in sequence:
        address = line_index * LINE
        result = cache.access(address, is_store=is_store)
        expected_hit, expected_dirty = reference.access(address, is_store)
        assert result.hit == expected_hit
        assert result.evicted_dirty_line == expected_dirty


@settings(max_examples=100, deadline=None)
@given(accesses)
def test_occupancy_never_exceeds_capacity(sequence):
    cache = Cache(size_bytes=4 * LINE, line_bytes=LINE, assoc=2)
    for line_index, is_store in sequence:
        cache.access(line_index * LINE, is_store=is_store)
        assert cache.occupancy() <= 4


@settings(max_examples=100, deadline=None)
@given(accesses)
def test_hits_plus_misses_equals_accesses(sequence):
    cache = Cache(size_bytes=4 * LINE, line_bytes=LINE)
    for line_index, is_store in sequence:
        cache.access(line_index * LINE, is_store=is_store)
    assert cache.hits + cache.misses == len(sequence)


@settings(max_examples=100, deadline=None)
@given(accesses)
def test_immediate_reaccess_always_hits(sequence):
    cache = Cache(size_bytes=2 * LINE, line_bytes=LINE)
    for line_index, is_store in sequence:
        cache.access(line_index * LINE, is_store=is_store)
        assert cache.access(line_index * LINE).hit
