"""Whole-GPU simulator tests."""

import pytest

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.gpu.simulator import GPUSimulator


def test_runs_real_workload(small_workload):
    sim = GPUSimulator(baseline_config())
    output = sim.run_traces(small_workload.all_traces)
    assert output.cycles > 0
    assert output.ipc > 0
    assert output.counters.instructions > 0


def test_warps_distributed_across_sms(deep_workload):
    sim = GPUSimulator(baseline_config())
    output = sim.run_traces(deep_workload.all_traces)
    busy = [c for c in output.per_sm_cycles if c > 0]
    assert len(busy) > 1


def test_cycles_is_slowest_sm(deep_workload):
    output = GPUSimulator(baseline_config()).run_traces(deep_workload.all_traces)
    assert output.cycles == max(output.per_sm_cycles)


def test_empty_workload():
    output = GPUSimulator(baseline_config()).run_traces([])
    assert output.cycles == 0
    assert output.ipc == 0.0


def test_instructions_invariant_across_configs(deep_workload):
    """IPC comparisons require identical instruction counts."""
    traces = deep_workload.all_traces
    outputs = [
        GPUSimulator(config).run_traces(traces)
        for config in (baseline_config(), sms_config(), full_stack_config())
    ]
    counts = {o.counters.instructions for o in outputs}
    assert len(counts) == 1


def test_full_stack_fastest(deep_workload):
    traces = deep_workload.all_traces
    base = GPUSimulator(baseline_config()).run_traces(traces)
    full = GPUSimulator(full_stack_config()).run_traces(traces)
    assert full.cycles <= base.cycles


def test_sms_between_baseline_and_full(deep_workload):
    traces = deep_workload.all_traces
    base = GPUSimulator(baseline_config()).run_traces(traces)
    sms = GPUSimulator(sms_config()).run_traces(traces)
    full = GPUSimulator(full_stack_config()).run_traces(traces)
    assert full.ipc >= sms.ipc >= base.ipc


def test_smaller_rb_more_offchip(deep_workload):
    traces = deep_workload.all_traces
    small = GPUSimulator(baseline_config(rb_entries=2)).run_traces(traces)
    large = GPUSimulator(baseline_config(rb_entries=16)).run_traces(traces)
    assert small.offchip_accesses > large.offchip_accesses


def test_deterministic(deep_workload):
    traces = deep_workload.all_traces
    a = GPUSimulator(baseline_config()).run_traces(traces)
    b = GPUSimulator(baseline_config()).run_traces(traces)
    assert a.cycles == b.cycles
    assert a.counters.as_dict() == b.counters.as_dict()


def test_verify_pops_enabled_catches_nothing_on_valid_traces(deep_workload):
    sim = GPUSimulator(sms_config(), verify_pops=True)
    output = sim.run_traces(deep_workload.all_traces)
    assert output.cycles > 0
