"""Procedural mesh generator tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.scene.generators import (
    blob_mesh,
    box_mesh,
    canopy_mesh,
    grid_mesh,
    merge_meshes,
    scatter_mesh,
    sliver_mesh,
)


def test_grid_mesh_triangle_count():
    assert grid_mesh(4, 3).shape == (4 * 3 * 2, 3, 3)


def test_grid_mesh_flat_when_no_amplitude():
    mesh = grid_mesh(3, 3, height_amplitude=0.0)
    assert np.allclose(mesh[:, :, 1], 0.0)


def test_grid_mesh_displaced_with_amplitude():
    mesh = grid_mesh(3, 3, height_amplitude=1.0, seed=5)
    assert np.abs(mesh[:, :, 1]).max() > 0.0


def test_grid_mesh_deterministic():
    a = grid_mesh(3, 3, height_amplitude=1.0, seed=5)
    b = grid_mesh(3, 3, height_amplitude=1.0, seed=5)
    assert np.array_equal(a, b)


def test_grid_mesh_seed_changes_output():
    a = grid_mesh(3, 3, height_amplitude=1.0, seed=5)
    b = grid_mesh(3, 3, height_amplitude=1.0, seed=6)
    assert not np.array_equal(a, b)


def test_grid_mesh_invalid_raises():
    with pytest.raises(SceneError):
        grid_mesh(0, 3)


def test_box_mesh_twelve_triangles():
    assert box_mesh((0, 0, 0), (1, 1, 1)).shape == (12, 3, 3)


def test_box_mesh_bounds():
    mesh = box_mesh((1, 2, 3), (2, 4, 6))
    flat = mesh.reshape(-1, 3)
    assert np.allclose(flat.min(axis=0), [0, 0, 0])
    assert np.allclose(flat.max(axis=0), [2, 4, 6])


def test_box_mesh_zero_extent_raises():
    with pytest.raises(SceneError):
        box_mesh((0, 0, 0), (1, 0, 1))


def test_blob_mesh_counts_scale_with_subdivision():
    base = blob_mesh((0, 0, 0), 1.0, subdivisions=1)
    finer = blob_mesh((0, 0, 0), 1.0, subdivisions=2)
    assert len(finer) == 4 * len(base)


def test_blob_mesh_on_sphere_without_bumpiness():
    mesh = blob_mesh((0, 0, 0), 2.0, subdivisions=2, bumpiness=0.0)
    radii = np.linalg.norm(mesh.reshape(-1, 3), axis=1)
    assert np.allclose(radii, 2.0, atol=1e-9)


def test_blob_mesh_bumpiness_displaces():
    mesh = blob_mesh((0, 0, 0), 2.0, subdivisions=2, bumpiness=0.3, seed=1)
    radii = np.linalg.norm(mesh.reshape(-1, 3), axis=1)
    assert radii.std() > 0.01


def test_blob_mesh_invalid_radius():
    with pytest.raises(SceneError):
        blob_mesh((0, 0, 0), 0.0)


def test_scatter_mesh_count_and_bounds():
    mesh = scatter_mesh(100, bounds_size=4.0, triangle_size=0.1, seed=3)
    assert mesh.shape == (100, 3, 3)


def test_scatter_mesh_clustered_tighter_than_uniform():
    uniform = scatter_mesh(500, bounds_size=20.0, clusters=1, seed=4)
    clustered = scatter_mesh(500, bounds_size=20.0, clusters=3, seed=4)
    # Clustered scenes concentrate mass: mean pairwise distance shrinks.
    def spread(mesh):
        cents = mesh.mean(axis=1)
        return cents.std(axis=0).mean()

    assert spread(clustered) < spread(uniform)


def test_scatter_mesh_invalid_count():
    with pytest.raises(SceneError):
        scatter_mesh(0)


def test_sliver_mesh_long_and_thin():
    mesh = sliver_mesh(50, length=8.0, thickness=0.02, seed=5)
    edge_long = np.linalg.norm(mesh[:, 1] - mesh[:, 0], axis=1)
    edge_thin = np.linalg.norm(mesh[:, 2] - mesh[:, 1], axis=1)
    assert np.allclose(edge_long, 8.0)
    assert np.allclose(edge_thin, 0.02, atol=1e-9)


def test_sliver_mesh_invalid_count():
    with pytest.raises(SceneError):
        sliver_mesh(0)


def test_canopy_mesh_counts():
    mesh = canopy_mesh(3, 50, seed=6)
    # 2 trunk slivers + 50 leaves per trunk.
    assert len(mesh) == 3 * (2 + 50)


def test_canopy_mesh_invalid():
    with pytest.raises(SceneError):
        canopy_mesh(0, 10)


def test_merge_meshes_concatenates():
    a = box_mesh((0, 0, 0), (1, 1, 1))
    b = grid_mesh(2, 2)
    merged = merge_meshes([a, b])
    assert len(merged) == len(a) + len(b)


def test_merge_meshes_empty_inputs():
    assert merge_meshes([]).shape == (0, 3, 3)
    assert merge_meshes([np.zeros((0, 3, 3))]).shape == (0, 3, 3)
