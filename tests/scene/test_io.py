"""OBJ import/export tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.scene.generators import box_mesh
from repro.scene.io import load_obj, save_obj
from repro.scene.scene import Scene

SIMPLE_OBJ = """\
# a single triangle
v 0 0 0
v 1 0 0
v 0 1 0
f 1 2 3
"""

QUAD_OBJ = """\
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
f 1 2 3 4
"""


def write(tmp_path, text, name="scene.obj"):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_load_single_triangle(tmp_path):
    scene = load_obj(write(tmp_path, SIMPLE_OBJ))
    assert scene.triangle_count == 1
    assert np.allclose(scene.triangle(0).b, [1, 0, 0])
    assert scene.name == "scene"


def test_quad_fan_triangulated(tmp_path):
    scene = load_obj(write(tmp_path, QUAD_OBJ))
    assert scene.triangle_count == 2


def test_negative_indices(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
    scene = load_obj(write(tmp_path, text))
    assert scene.triangle_count == 1


def test_slash_forms(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1 2/2/2 3//3\n"
    scene = load_obj(write(tmp_path, text))
    assert scene.triangle_count == 1


def test_comments_and_blank_lines_skipped(tmp_path):
    text = "\n# comment\n" + SIMPLE_OBJ + "\n\n"
    assert load_obj(write(tmp_path, text)).triangle_count == 1


def test_custom_name(tmp_path):
    scene = load_obj(write(tmp_path, SIMPLE_OBJ), name="CUSTOM")
    assert scene.name == "CUSTOM"


def test_out_of_range_index_raises(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 4\n"
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, text))


def test_zero_index_raises(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n"
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, text))


def test_bad_index_raises(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf a b c\n"
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, text))


def test_short_face_raises(tmp_path):
    text = "v 0 0 0\nv 1 0 0\nf 1 2\n"
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, text))


def test_short_vertex_raises(tmp_path):
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, "v 0 0\n"))


def test_empty_file_raises(tmp_path):
    with pytest.raises(SceneError):
        load_obj(write(tmp_path, "# nothing\n"))


def test_roundtrip(tmp_path):
    original = Scene("box", box_mesh((0, 0, 0), (2, 2, 2)))
    path = save_obj(original, tmp_path / "box.obj")
    loaded = load_obj(path)
    assert loaded.triangle_count == original.triangle_count
    assert np.allclose(
        np.sort(loaded.vertices.reshape(-1, 3), axis=0),
        np.sort(original.vertices.reshape(-1, 3), axis=0),
    )


def test_roundtrip_through_bvh(tmp_path):
    """An imported scene must work through the whole pipeline."""
    from repro.bvh.api import build_bvh
    from repro.bvh.validate import validate_wide

    original = Scene("box", box_mesh((0, 0, 0), (2, 2, 2)))
    loaded = load_obj(save_obj(original, tmp_path / "box.obj"))
    bvh = build_bvh(loaded)
    validate_wide(bvh)
