"""Pinhole camera tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.geometry.vec import normalize, vec3
from repro.scene.camera import PinholeCamera


def make_camera(**kwargs):
    defaults = dict(
        position=vec3(0, 0, 5), look_at=vec3(0, 0, 0), width=8, height=8
    )
    defaults.update(kwargs)
    return PinholeCamera(**defaults)


def test_center_ray_points_at_target():
    cam = make_camera()
    ray = cam.ray_for_pixel(3, 3)  # near center of an 8x8 image
    # The central rays should point roughly along -z.
    assert ray.direction[2] < -0.9


def test_ray_directions_unit_length():
    cam = make_camera()
    for _, ray in cam.rays():
        assert np.linalg.norm(ray.direction) == pytest.approx(1.0)


def test_pixel_count():
    assert make_camera(width=4, height=6).pixel_count == 24


def test_rays_cover_all_pixels_in_order():
    cam = make_camera(width=3, height=2)
    indices = [index for index, _ in cam.rays()]
    assert indices == list(range(6))


def test_out_of_range_pixel_raises():
    cam = make_camera()
    with pytest.raises(SceneError):
        cam.ray_for_pixel(8, 0)
    with pytest.raises(SceneError):
        cam.ray_for_pixel(0, -1)


def test_invalid_resolution_raises():
    with pytest.raises(SceneError):
        make_camera(width=0)


def test_invalid_fov_raises():
    with pytest.raises(SceneError):
        make_camera(vfov_degrees=180.0)
    with pytest.raises(SceneError):
        make_camera(vfov_degrees=0.0)


def test_top_row_rays_point_up():
    cam = make_camera()
    top = cam.ray_for_pixel(4, 0)
    bottom = cam.ray_for_pixel(4, 7)
    assert top.direction[1] > bottom.direction[1]


def test_left_column_rays_point_left():
    cam = make_camera()
    left = cam.ray_for_pixel(0, 4)
    right = cam.ray_for_pixel(7, 4)
    assert left.direction[0] < right.direction[0]


def test_jitter_changes_direction():
    cam = make_camera()
    a = cam.ray_for_pixel(2, 2, jitter=(0.1, 0.1))
    b = cam.ray_for_pixel(2, 2, jitter=(0.9, 0.9))
    assert not np.allclose(a.direction, b.direction)


def test_rays_originate_at_camera():
    cam = make_camera()
    for _, ray in cam.rays():
        assert np.allclose(ray.origin, cam.position)


def test_wide_image_horizontal_spread():
    wide = make_camera(width=16, height=4)
    left = wide.ray_for_pixel(0, 2)
    right = wide.ray_for_pixel(15, 2)
    # Aspect > 1 means horizontal field wider than vertical.
    spread_x = right.direction[0] - left.direction[0]
    top = wide.ray_for_pixel(8, 0)
    bottom = wide.ray_for_pixel(8, 3)
    spread_y = top.direction[1] - bottom.direction[1]
    assert spread_x > spread_y
