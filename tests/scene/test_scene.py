"""Scene container tests."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.geometry.triangle import Triangle
from repro.geometry.vec import vec3
from repro.scene.scene import Scene


def simple_scene():
    verts = np.array(
        [
            [[0, 0, 0], [1, 0, 0], [0, 1, 0]],
            [[2, 0, 0], [3, 0, 0], [2, 1, 0]],
        ],
        dtype=np.float64,
    )
    return Scene("two", verts)


def test_triangle_count():
    assert simple_scene().triangle_count == 2


def test_bad_shape_raises():
    with pytest.raises(SceneError):
        Scene("bad", np.zeros((3, 2, 3)))


def test_triangle_materialization():
    tri = simple_scene().triangle(1)
    assert isinstance(tri, Triangle)
    assert tri.prim_id == 1
    assert np.allclose(tri.a, [2, 0, 0])


def test_triangle_out_of_range():
    with pytest.raises(SceneError):
        simple_scene().triangle(2)
    with pytest.raises(SceneError):
        simple_scene().triangle(-1)


def test_triangles_lists_all():
    tris = simple_scene().triangles()
    assert [t.prim_id for t in tris] == [0, 1]


def test_bounds_cover_all_vertices():
    scene = simple_scene()
    box = scene.bounds()
    for tri in scene.triangles():
        for vertex in tri.vertices():
            assert box.contains_point(vertex)


def test_bounds_cached_identity():
    scene = simple_scene()
    assert scene.bounds() is scene.bounds()


def test_empty_scene_bounds_empty():
    scene = Scene("empty", np.zeros((0, 3, 3)))
    assert scene.bounds().is_empty()
    assert scene.triangle_count == 0


def test_centroids_shape_and_values():
    cents = simple_scene().centroids()
    assert cents.shape == (2, 3)
    assert np.allclose(cents[0], [1 / 3, 1 / 3, 0])


def test_default_light_above_scene():
    scene = simple_scene()
    assert scene.light_position[1] > scene.bounds().hi[1]


def test_from_triangles_roundtrip():
    tris = [
        Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0)),
        Triangle(a=vec3(5, 5, 5), b=vec3(6, 5, 5), c=vec3(5, 6, 5)),
    ]
    scene = Scene.from_triangles("rt", tris)
    assert scene.triangle_count == 2
    assert np.allclose(scene.triangle(1).a, [5, 5, 5])


def test_validate_rejects_nan():
    verts = np.zeros((1, 3, 3))
    verts[0, 0, 0] = np.nan
    scene = Scene("nan", verts)
    with pytest.raises(SceneError):
        scene.validate()


def test_validate_passes_finite():
    simple_scene().validate()


def test_triangle_bounds_single():
    box = simple_scene().triangle_bounds(0)
    assert np.allclose(box.lo, [0, 0, 0])
    assert np.allclose(box.hi, [1, 1, 0])
