"""Vector math unit tests."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.vec import (
    cross,
    dot,
    length,
    lerp,
    normalize,
    reflect,
    vec3,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
vectors = st.builds(vec3, finite, finite, finite)


def test_vec3_builds_float64_array():
    v = vec3(1, 2, 3)
    assert v.dtype == np.float64
    assert v.shape == (3,)
    assert list(v) == [1.0, 2.0, 3.0]


def test_dot_orthogonal_axes():
    assert dot(vec3(1, 0, 0), vec3(0, 1, 0)) == 0.0


def test_dot_parallel():
    assert dot(vec3(2, 0, 0), vec3(3, 0, 0)) == 6.0


def test_cross_right_handed():
    assert np.allclose(cross(vec3(1, 0, 0), vec3(0, 1, 0)), vec3(0, 0, 1))


def test_cross_anticommutative():
    a, b = vec3(1, 2, 3), vec3(-2, 0.5, 4)
    assert np.allclose(cross(a, b), -cross(b, a))


def test_length_pythagorean():
    assert length(vec3(3, 4, 0)) == pytest.approx(5.0)


def test_normalize_unit_length():
    n = normalize(vec3(10, -4, 3))
    assert length(n) == pytest.approx(1.0)


def test_normalize_zero_raises():
    with pytest.raises(GeometryError):
        normalize(vec3(0, 0, 0))


def test_lerp_endpoints_and_midpoint():
    a, b = vec3(0, 0, 0), vec3(2, 4, 6)
    assert np.allclose(lerp(a, b, 0.0), a)
    assert np.allclose(lerp(a, b, 1.0), b)
    assert np.allclose(lerp(a, b, 0.5), vec3(1, 2, 3))


def test_reflect_off_floor():
    incoming = normalize(vec3(1, -1, 0))
    bounced = reflect(incoming, vec3(0, 1, 0))
    assert np.allclose(bounced, normalize(vec3(1, 1, 0)))


def test_reflect_preserves_length():
    d = vec3(0.3, -2.0, 1.1)
    r = reflect(d, vec3(0, 1, 0))
    assert length(r) == pytest.approx(length(d))


@given(vectors, vectors)
def test_dot_commutative(a, b):
    assert dot(a, b) == pytest.approx(dot(b, a), rel=1e-9, abs=1e-6)


@given(vectors, vectors)
def test_cross_orthogonal_to_inputs(a, b):
    c = cross(a, b)
    # Orthogonality up to floating-point error, which scales with the
    # magnitudes involved.
    scale = (length(a) * length(b) * max(length(c), 1.0)) + 1.0
    assert abs(dot(c, a)) / scale < 1e-9
    assert abs(dot(c, b)) / scale < 1e-9


@given(vectors)
def test_normalize_idempotent(a):
    if length(a) < 1e-6:
        return
    once = normalize(a)
    twice = normalize(once)
    assert np.allclose(once, twice, atol=1e-12)
