"""Intersection kernel tests: slab ray/AABB and Moeller-Trumbore."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.intersect import (
    ray_aabb_intersect,
    ray_aabb_intersect_batch,
    ray_triangle_intersect,
)
from repro.geometry.ray import Ray
from repro.geometry.triangle import Triangle
from repro.geometry.vec import normalize, vec3


def unit_box():
    return AABB(lo=vec3(0, 0, 0), hi=vec3(1, 1, 1))


def test_ray_hits_box_front():
    ray = Ray(origin=vec3(-1, 0.5, 0.5), direction=vec3(1, 0, 0))
    hit = ray_aabb_intersect(ray, unit_box())
    assert hit is not None
    t_enter, t_exit = hit
    assert t_enter == pytest.approx(1.0)
    assert t_exit == pytest.approx(2.0)


def test_ray_misses_box():
    ray = Ray(origin=vec3(-1, 2.5, 0.5), direction=vec3(1, 0, 0))
    assert ray_aabb_intersect(ray, unit_box()) is None


def test_ray_inside_box_reports_tmin():
    ray = Ray(origin=vec3(0.5, 0.5, 0.5), direction=vec3(1, 0, 0))
    hit = ray_aabb_intersect(ray, unit_box())
    assert hit is not None
    assert hit[0] == pytest.approx(ray.t_min)


def test_ray_behind_box_misses():
    ray = Ray(origin=vec3(2, 0.5, 0.5), direction=vec3(1, 0, 0))
    assert ray_aabb_intersect(ray, unit_box()) is None


def test_empty_box_never_hit():
    ray = Ray(origin=vec3(-1, 0.5, 0.5), direction=vec3(1, 0, 0))
    assert ray_aabb_intersect(ray, AABB.empty()) is None


def test_axis_parallel_ray_in_slab():
    # Direction has zero y/z components; ray inside those slabs.
    ray = Ray(origin=vec3(-1, 0.5, 0.5), direction=vec3(1, 0, 0))
    assert ray_aabb_intersect(ray, unit_box()) is not None


def test_axis_parallel_ray_outside_slab():
    ray = Ray(origin=vec3(-1, 2.0, 0.5), direction=vec3(1, 0, 0))
    assert ray_aabb_intersect(ray, unit_box()) is None


def test_t_max_clips_hit():
    ray = Ray(origin=vec3(-1, 0.5, 0.5), direction=vec3(1, 0, 0), t_max=0.5)
    assert ray_aabb_intersect(ray, unit_box()) is None


def test_batch_matches_scalar():
    ray = Ray(origin=vec3(-1, 0.2, 0.7), direction=normalize(vec3(1, 0.1, -0.05)))
    boxes = [
        AABB(lo=vec3(0, 0, 0), hi=vec3(1, 1, 1)),
        AABB(lo=vec3(5, 5, 5), hi=vec3(6, 6, 6)),
        AABB(lo=vec3(-2, -2, -2), hi=vec3(2, 2, 2)),
    ]
    los = np.stack([b.lo for b in boxes])
    his = np.stack([b.hi for b in boxes])
    hits, t_enter = ray_aabb_intersect_batch(ray, los, his)
    for i, box in enumerate(boxes):
        scalar = ray_aabb_intersect(ray, box)
        assert hits[i] == (scalar is not None)
        if scalar is not None:
            assert t_enter[i] == pytest.approx(scalar[0])


def test_triangle_center_hit():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0.25, 0.25, 1.0), direction=vec3(0, 0, -1))
    assert ray_triangle_intersect(ray, tri) == pytest.approx(1.0)


def test_triangle_miss_outside():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0.9, 0.9, 1.0), direction=vec3(0, 0, -1))
    assert ray_triangle_intersect(ray, tri) is None


def test_triangle_backface_hit():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0.25, 0.25, -1.0), direction=vec3(0, 0, 1))
    assert ray_triangle_intersect(ray, tri) == pytest.approx(1.0)


def test_triangle_parallel_ray_misses():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0, 0, 1), direction=vec3(1, 0, 0))
    assert ray_triangle_intersect(ray, tri) is None


def test_triangle_hit_respects_t_max():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0.25, 0.25, 1.0), direction=vec3(0, 0, -1), t_max=0.5)
    assert ray_triangle_intersect(ray, tri) is None


def test_triangle_hit_respects_t_min():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0))
    ray = Ray(origin=vec3(0.25, 0.25, 1.0), direction=vec3(0, 0, -1), t_min=2.0)
    assert ray_triangle_intersect(ray, tri) is None


coord = st.floats(min_value=-10, max_value=10, allow_nan=False)


@given(st.builds(vec3, coord, coord, coord))
def test_hit_triangle_bound_is_hit_box(offset):
    """A ray hitting a triangle must also hit the triangle's AABB."""
    tri = Triangle(a=vec3(0, 0, 0) + offset, b=vec3(1, 0, 0) + offset,
                   c=vec3(0, 1, 0.2) + offset)
    target = (tri.a + tri.b + tri.c) / 3.0
    origin = target + vec3(0.3, 0.4, 5.0)
    ray = Ray(origin=origin, direction=normalize(target - origin))
    t = ray_triangle_intersect(ray, tri)
    assert t is not None
    from repro.geometry.triangle import triangle_aabb

    assert ray_aabb_intersect(ray, triangle_aabb(tri)) is not None


@given(coord, coord)
def test_batch_empty_input(a, b):
    ray = Ray(origin=vec3(a, b, 0), direction=vec3(1, 0, 0))
    hits, t_enter = ray_aabb_intersect_batch(ray, np.zeros((0, 3)), np.zeros((0, 3)))
    assert hits.shape == (0,)
    assert t_enter.shape == (0,)
