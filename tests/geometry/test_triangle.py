"""Triangle unit tests."""

import numpy as np
import pytest

from repro.geometry.triangle import Triangle, triangle_aabb, triangle_centroid
from repro.geometry.vec import vec3


@pytest.fixture
def unit_triangle():
    return Triangle(a=vec3(0, 0, 0), b=vec3(1, 0, 0), c=vec3(0, 1, 0), prim_id=7)


def test_vertices_stacked(unit_triangle):
    verts = unit_triangle.vertices()
    assert verts.shape == (3, 3)
    assert np.allclose(verts[1], [1, 0, 0])


def test_area_right_triangle(unit_triangle):
    assert unit_triangle.area() == pytest.approx(0.5)


def test_degenerate_detection():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(1, 1, 1), c=vec3(2, 2, 2))
    assert tri.is_degenerate()


def test_non_degenerate(unit_triangle):
    assert not unit_triangle.is_degenerate()


def test_normal_right_handed(unit_triangle):
    assert np.allclose(unit_triangle.normal(), [0, 0, 1])


def test_normal_unit_length():
    tri = Triangle(a=vec3(0, 0, 0), b=vec3(3, 0, 0), c=vec3(0, 5, 0))
    assert np.linalg.norm(tri.normal()) == pytest.approx(1.0)


def test_aabb_tight(unit_triangle):
    box = triangle_aabb(unit_triangle)
    assert np.allclose(box.lo, [0, 0, 0])
    assert np.allclose(box.hi, [1, 1, 0])


def test_centroid(unit_triangle):
    assert np.allclose(triangle_centroid(unit_triangle), [1 / 3, 1 / 3, 0])


def test_prim_id_kept(unit_triangle):
    assert unit_triangle.prim_id == 7
