"""Ray unit tests."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.ray import Ray, T_MAX_DEFAULT
from repro.geometry.vec import vec3


def test_ray_at_parameter():
    ray = Ray(origin=vec3(1, 0, 0), direction=vec3(0, 2, 0))
    assert np.allclose(ray.at(0.5), [1, 1, 0])


def test_ray_default_interval():
    ray = Ray(origin=vec3(0, 0, 0), direction=vec3(1, 0, 0))
    assert ray.t_min > 0.0
    assert ray.t_max == T_MAX_DEFAULT


def test_zero_direction_raises():
    with pytest.raises(GeometryError):
        Ray(origin=vec3(0, 0, 0), direction=vec3(0, 0, 0))


def test_empty_interval_raises():
    with pytest.raises(GeometryError):
        Ray(origin=vec3(0, 0, 0), direction=vec3(1, 0, 0), t_min=2.0, t_max=1.0)


def test_inv_direction_reciprocal():
    ray = Ray(origin=vec3(0, 0, 0), direction=vec3(2, -4, 0.5))
    assert np.allclose(ray.inv_direction, [0.5, -0.25, 2.0])


def test_inv_direction_zero_component_is_inf():
    ray = Ray(origin=vec3(0, 0, 0), direction=vec3(1, 0, 0))
    assert np.isinf(ray.inv_direction[1])
    assert np.isinf(ray.inv_direction[2])


def test_origin_and_direction_coerced_to_float64():
    ray = Ray(origin=[0, 0, 0], direction=[1, 2, 3])
    assert ray.origin.dtype == np.float64
    assert ray.direction.dtype == np.float64
