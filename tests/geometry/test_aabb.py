"""AABB unit and property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.aabb import AABB, surface_area, union
from repro.geometry.vec import vec3

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(vec3, coord, coord, coord)


def box_from(lo, hi):
    return AABB(lo=np.minimum(lo, hi), hi=np.maximum(lo, hi))


boxes = st.builds(box_from, points, points)


def test_empty_box_is_empty():
    assert AABB.empty().is_empty()


def test_default_box_is_empty():
    assert AABB().is_empty()


def test_from_points_tight():
    pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 1, 0]])
    box = AABB.from_points(pts)
    assert np.allclose(box.lo, [-1, 0, 0])
    assert np.allclose(box.hi, [1, 2, 3])


def test_from_no_points_empty():
    assert AABB.from_points(np.zeros((0, 3))).is_empty()


def test_contains_point_boundary():
    box = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    assert box.contains_point(vec3(0, 0, 0))
    assert box.contains_point(vec3(1, 1, 1))
    assert not box.contains_point(vec3(1.001, 0.5, 0.5))


def test_contains_box_accepts_empty():
    box = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    assert box.contains_box(AABB.empty())


def test_grown_covers_new_point():
    box = box_from(vec3(0, 0, 0), vec3(1, 1, 1)).grown(vec3(5, -2, 0.5))
    assert box.contains_point(vec3(5, -2, 0.5))
    assert box.contains_point(vec3(0, 0, 0))


def test_centroid_center():
    box = box_from(vec3(0, 0, 0), vec3(2, 4, 6))
    assert np.allclose(box.centroid(), [1, 2, 3])


def test_extent_empty_is_zero():
    assert np.allclose(AABB.empty().extent(), [0, 0, 0])


def test_longest_axis():
    box = box_from(vec3(0, 0, 0), vec3(1, 5, 2))
    assert box.longest_axis() == 1


def test_overlaps_disjoint():
    a = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    b = box_from(vec3(2, 2, 2), vec3(3, 3, 3))
    assert not a.overlaps(b)


def test_overlaps_touching():
    a = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    b = box_from(vec3(1, 0, 0), vec3(2, 1, 1))
    assert a.overlaps(b)


def test_overlaps_empty_never():
    a = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    assert not a.overlaps(AABB.empty())


def test_union_with_empty_is_identity():
    a = box_from(vec3(0, 0, 0), vec3(1, 1, 1))
    u = union(a, AABB.empty())
    assert np.allclose(u.lo, a.lo) and np.allclose(u.hi, a.hi)


def test_surface_area_unit_cube():
    assert surface_area(box_from(vec3(0, 0, 0), vec3(1, 1, 1))) == pytest.approx(6.0)


def test_surface_area_empty_zero():
    assert surface_area(AABB.empty()) == 0.0


@given(boxes, boxes)
def test_union_contains_both(a, b):
    u = union(a, b)
    assert u.contains_box(a)
    assert u.contains_box(b)


@given(boxes, boxes)
def test_union_commutative(a, b):
    u1, u2 = union(a, b), union(b, a)
    assert np.allclose(u1.lo, u2.lo) and np.allclose(u1.hi, u2.hi)


@given(boxes)
def test_union_idempotent(a):
    u = union(a, a)
    assert np.allclose(u.lo, a.lo) and np.allclose(u.hi, a.hi)


@given(boxes, boxes)
def test_union_surface_area_monotone(a, b):
    assert surface_area(union(a, b)) >= max(surface_area(a), surface_area(b)) - 1e-9


@given(boxes, points)
def test_grown_monotone(box, p):
    grown = box.grown(p)
    assert grown.contains_box(box)
    assert grown.contains_point(p)
