"""Workload parameter tests."""

from repro.workloads.params import COMPLEX_SCENES, DEFAULT_PARAMS, WorkloadParams


def test_default_two_tier_scheme():
    assert DEFAULT_PARAMS.for_scene("BUNNY") == (32, 32, 1)
    assert DEFAULT_PARAMS.for_scene("ROBOT") == (16, 16, 1)


def test_complex_scene_list_matches_paper():
    assert set(COMPLEX_SCENES) == {"CHSNT", "ROBOT", "PARK"}


def test_case_insensitive():
    assert DEFAULT_PARAMS.for_scene("robot") == DEFAULT_PARAMS.for_scene("ROBOT")


def test_scaled_shrinks_resolution():
    scaled = DEFAULT_PARAMS.scaled(0.5)
    assert scaled.width == 16
    assert scaled.complex_width == 8


def test_scaled_floors_at_four():
    scaled = DEFAULT_PARAMS.scaled(0.01)
    assert scaled.width == 4
    assert scaled.complex_width == 4


def test_scaled_preserves_other_fields():
    params = WorkloadParams(spp=2, max_bounces=5, seed=9)
    scaled = params.scaled(0.5)
    assert scaled.spp == 2
    assert scaled.max_bounces == 5
    assert scaled.seed == 9
