"""Workload suite tests."""

import pytest

from repro.errors import SceneError
from repro.workloads.lumibench import (
    SCENE_NAMES,
    all_scenes,
    load_scene,
    scene_recipe,
)


def test_sixteen_scenes():
    assert len(SCENE_NAMES) == 16


def test_table2_names_present():
    expected = {
        "WKND", "SPRNG", "FOX", "LANDS", "CRNVL", "SPNZA", "BATH", "ROBOT",
        "CAR", "PARTY", "FRST", "BUNNY", "SHIP", "REF", "CHSNT", "PARK",
    }
    assert set(SCENE_NAMES) == expected


def test_load_scene_case_insensitive():
    assert load_scene("ship").name == "SHIP"


def test_unknown_scene_raises():
    with pytest.raises(SceneError):
        load_scene("NOPE")


def test_recipes_have_paper_metadata():
    for name in SCENE_NAMES:
        recipe = scene_recipe(name)
        assert recipe.paper_bvh_mb >= 0
        assert recipe.paper_triangles


def test_complex_scenes_flagged():
    for name in ("CHSNT", "ROBOT", "PARK"):
        assert scene_recipe(name).complex_scene
    assert not scene_recipe("BUNNY").complex_scene


@pytest.mark.parametrize("name", SCENE_NAMES)
def test_every_scene_generates_valid_geometry(name):
    scene = load_scene(name)
    scene.validate()
    assert scene.triangle_count > 0


def test_scene_generation_deterministic():
    a = load_scene("CRNVL")
    b = load_scene("CRNVL")
    import numpy as np

    assert np.array_equal(a.vertices, b.vertices)


def test_robot_is_largest():
    robot = load_scene("ROBOT").triangle_count
    for name in ("BUNNY", "SHIP", "REF", "WKND"):
        assert robot > load_scene(name).triangle_count


def test_ship_uses_few_primitives():
    assert load_scene("SHIP").triangle_count < 2000
