"""Regression guards on the workload suite's depth statistics.

The calibration (EXPERIMENTS.md) relies on the suite matching the paper's
Fig. 4/5 depth character; these tests freeze that property so future
scene edits cannot silently break the reproduction.  Run at reduced
resolution for speed — the statistics are resolution-stable enough for
the band checks below.
"""

import pytest

from repro.experiments.common import WorkloadCache
from repro.trace.depth import bucket_fractions, depth_histogram, depth_statistics
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(params=WorkloadParams().scaled(0.5))


@pytest.fixture(scope="module")
def all_traces(cache):
    traces = []
    for name in cache.names:
        traces.extend(cache.traced(name).traces)
    return traces


def test_aggregate_depth_bands(all_traces):
    """Paper Fig. 4: avg/median 4-5, max ~30 (we accept 20-45)."""
    stats = depth_statistics(all_traces)
    assert 3.5 <= stats.avg_depth <= 7.0
    assert 3.0 <= stats.median_depth <= 7.0
    assert 18 <= stats.max_depth <= 45


def test_aggregate_bucket_bands(all_traces):
    """Paper Fig. 5: ~81% / 17% / 1.9% across 1-8 / 9-16 / >16."""
    low, mid, high = bucket_fractions(depth_histogram(all_traces))
    assert 0.70 <= low <= 0.92
    assert 0.06 <= mid <= 0.26
    assert 0.0 <= high <= 0.06


def test_heavyweights_deepest(cache):
    depths = {
        name: depth_statistics(cache.traced(name).traces).avg_depth
        for name in ("ROBOT", "CAR", "WKND", "BUNNY", "REF")
    }
    assert depths["ROBOT"] > depths["WKND"]
    assert depths["ROBOT"] > depths["BUNNY"]
    assert depths["CAR"] > depths["REF"]


def test_simple_scenes_fit_in_eight_entries(cache):
    """REF and BATH must stay mostly within the 8-entry primary stack —
    the paper notes they gain least from SMS."""
    for name in ("REF", "BATH"):
        low, _, _ = bucket_fractions(
            depth_histogram(cache.traced(name).traces)
        )
        assert low >= 0.9


def test_ship_leaf_heavy(cache):
    """SHIP's slivers give it the paper's high leaf-access ratio."""
    from repro.trace.events import NodeKind

    traces = cache.traced("SHIP").traces
    leaf = sum(
        1 for t in traces for s in t.steps if s.kind is NodeKind.LEAF
    )
    total = sum(t.step_count for t in traces)
    assert leaf / total > 0.35
