"""End-to-end guard wiring: bit-identity, API plumbing, runtime paths."""

import dataclasses

import pytest

from repro.core.api import time_traces
from repro.core.presets import named_config
from repro.errors import ConfigError, GuardViolationError, JobExecutionError
from repro.gpu.simulator import GPUSimulator
from repro.guard import FaultSpec, GuardConfig
from repro.runtime.executor import ExecutionPolicy, run_jobs
from repro.runtime.job import SimulationJob
from repro.runtime.store import ResultStore
from repro.workloads.params import WorkloadParams

SMS_CONFIG = named_config("RB_2+SH_2+SK+RA")


@pytest.mark.parametrize("label", ["RB_8", "RB_8+SH_8", "RB_2+SH_2+SK+RA"])
def test_guarded_run_bit_identical(deep_workload, label):
    """The tentpole guarantee: guards observe without perturbing."""
    traces = deep_workload.all_traces
    config = named_config(label)
    plain = GPUSimulator(config).run_traces(traces)
    guarded = GPUSimulator(config, guard=GuardConfig()).run_traces(traces)
    assert plain.counters.as_dict() == guarded.counters.as_dict()
    assert plain.per_sm_cycles == guarded.per_sm_cycles


def test_guarded_run_identical_without_deep_check(small_workload):
    traces = small_workload.all_traces
    plain = GPUSimulator(SMS_CONFIG).run_traces(traces)
    guarded = GPUSimulator(
        SMS_CONFIG, guard=GuardConfig(deep_check=False)
    ).run_traces(traces)
    assert plain.counters.as_dict() == guarded.counters.as_dict()


def test_time_traces_accepts_guard(small_workload):
    result = time_traces(
        small_workload.all_traces, SMS_CONFIG, guard=GuardConfig()
    )
    baseline = time_traces(small_workload.all_traces, SMS_CONFIG)
    assert result.counters == baseline.counters


def test_max_cycles_budget_enforced(small_workload):
    from repro.errors import SimulationStallError

    with pytest.raises(SimulationStallError, match="cycle budget"):
        GPUSimulator(
            SMS_CONFIG, guard=GuardConfig(max_cycles=10)
        ).run_traces(small_workload.all_traces)


def test_guard_config_validation():
    with pytest.raises(ConfigError):
        GuardConfig(stall_window=0)
    with pytest.raises(ConfigError):
        GuardConfig(max_cycles=0)
    with pytest.raises(ConfigError):
        GuardConfig(history=0)


PARAMS = WorkloadParams().scaled(0.25)


def test_job_guard_fields_change_key():
    plain = SimulationJob.from_params("SHIP", SMS_CONFIG, PARAMS)
    guarded = dataclasses.replace(plain, guard=True, max_cycles=10_000_000)
    assert plain.key() != guarded.key()
    assert guarded.spec()["guard"] is True
    assert guarded.spec()["max_cycles"] == 10_000_000


def test_guarded_job_runs_and_matches_unguarded():
    plain = SimulationJob.from_params("SHIP", SMS_CONFIG, PARAMS)
    guarded = dataclasses.replace(plain, guard=True)
    assert guarded.run().counters == plain.run().counters


class _ViolatingJob:
    """A job whose guard deterministically fires (stand-in for a real
    integrity bug surfacing mid-sweep)."""

    runs = 0

    def __init__(self, tag="c"):
        self.tag = tag

    def key(self):
        return "ab" + self.tag * 62

    def spec(self):
        return {"scene": "SYNTH"}

    def describe(self):
        return f"SYNTH/violating-{self.tag}"

    def run(self):
        _ViolatingJob.runs += 1
        raise GuardViolationError(
            "entry conservation violated", cycle=812, sm_id=0, warp_id=3,
            component="stack[slot=0]",
        )


def test_executor_records_guard_violation_without_retry(tmp_path):
    store = ResultStore(tmp_path / "store")
    _ViolatingJob.runs = 0
    with pytest.raises(JobExecutionError, match="integrity guard") as excinfo:
        run_jobs(
            [_ViolatingJob()],
            store=store,
            policy=ExecutionPolicy(workers=1, retries=3, backoff=0.0),
        )
    assert _ViolatingJob.runs == 1  # deterministic failure: no retries
    assert isinstance(excinfo.value.__cause__, GuardViolationError)
    key = _ViolatingJob().key()
    record = store.failure_for(key)
    assert record["error"]["type"] == "GuardViolationError"
    assert record["error"]["diagnostics"]["cycle"] == 812
    assert record["spec"] == {"scene": "SYNTH"}
    # the violation never produced a cached result
    assert store.get(key) is None and list(store.keys()) == []


def test_executor_records_guard_violation_from_workers(tmp_path):
    """Same contract through the process pool: the violation pickles back
    from the worker, skips the retry budget, and is recorded."""
    store = ResultStore(tmp_path / "store")
    with pytest.raises(JobExecutionError, match="integrity guard"):
        run_jobs(
            [_ViolatingJob("c"), _ViolatingJob("d")],
            store=store,
            policy=ExecutionPolicy(workers=2, retries=3, backoff=0.0),
        )
    recorded = list(store.failures())
    assert recorded, "no structured failure persisted from the pool path"
    record = store.failure_for(recorded[0])
    assert record["error"]["diagnostics"]["component"] == "stack[slot=0]"
    assert list(store.keys()) == []
