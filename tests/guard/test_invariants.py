"""GuardedStack / InvariantChecker tests: the conservation laws fire.

Each test plants one specific corruption directly in the wrapped model
(the way a real bookkeeping bug would) and asserts the matching law
raises a structured :class:`~repro.errors.InvariantViolationError`.
"""

import pytest

from repro.errors import InvariantViolationError, StackError
from repro.gpu.counters import Counters
from repro.guard.invariants import GuardContext, GuardedStack, InvariantChecker
from repro.stack.sms import SmsStack


@pytest.fixture
def guarded():
    stack = SmsStack(rb_entries=2, sh_entries=2, realloc=True)
    return GuardedStack(stack, GuardContext(sm_id=0), component="stack[slot=0]")


def fill(guarded, lane=0, count=8):
    for value in range(count):
        guarded.push(lane, 0x1000 + value)


def test_clean_traffic_passes(guarded):
    """Pushing through all three levels and draining violates nothing."""
    fill(guarded, count=10)
    guarded.verify()
    for _ in range(10):
        guarded.pop(0)
    guarded.verify()
    assert guarded.pushed == 10 and guarded.popped == 10
    # occupancy balances closed: everything stored was loaded back
    assert guarded.shared_stores == guarded.shared_loads
    assert guarded.global_stores == guarded.global_loads


def test_guard_is_pure_observer(guarded):
    """The wrapped model's activities come back untouched."""
    plain = SmsStack(rb_entries=2, sh_entries=2, realloc=True)
    for value in range(10):
        plain_act = plain.push(0, 0x1000 + value)
        guard_act = guarded.push(0, 0x1000 + value)
        assert [(o.space, o.kind, o.address) for o in plain_act.ops] == [
            (o.space, o.kind, o.address) for o in guard_act.ops
        ]
    for _ in range(10):
        assert plain.pop(0)[0] == guarded.pop(0)[0]


def test_lifo_corruption_detected(guarded):
    fill(guarded, count=3)
    guarded.inner._rb[0][-1] ^= 0xFF  # flip bits in the top RB entry
    with pytest.raises(InvariantViolationError, match="LIFO order violated"):
        guarded.pop(0)


def test_lost_entry_detected(guarded):
    fill(guarded, count=3)
    guarded.inner._rb[0].pop()  # an entry silently vanishes
    with pytest.raises(InvariantViolationError, match="entry conservation"):
        guarded.verify()


def test_entries_lost_at_empty_model(guarded):
    fill(guarded, count=2)
    guarded.inner._rb[0].clear()  # model forgot everything
    with pytest.raises(InvariantViolationError, match="entries lost"):
        guarded.pop(0)
        guarded.pop(0)


def test_phantom_entry_detected(guarded):
    fill(guarded, count=3)
    guarded.inner._rb[0].append(0xBAD)  # an entry nobody pushed
    with pytest.raises(InvariantViolationError, match="conservation|diverged"):
        guarded.verify()


def test_deep_check_catches_value_swap(guarded):
    """Same depth, different contents — only the deep check sees it."""
    fill(guarded, count=3)
    rb = guarded.inner._rb[0]
    rb[0], rb[1] = rb[1], rb[0]
    with pytest.raises(InvariantViolationError, match="diverged"):
        guarded.verify()


def test_borrow_bound_detected(guarded):
    sms = guarded.inner
    donor_regions = [sms._own[lane] for lane in range(1, sms.max_borrows + 2)]
    sms._chain[0].extend(donor_regions)  # one borrow too many
    with pytest.raises(InvariantViolationError, match="borrow bound"):
        guarded.verify()


def test_structural_invariant_surfaced(guarded):
    sms = guarded.inner
    sms._chain[1].append(sms._chain[0][0])  # duplicate chain membership
    with pytest.raises(InvariantViolationError, match="structural"):
        guarded.verify()


def test_shared_balance_detected(guarded):
    fill(guarded, count=6)  # resident in RB + SH + global
    guarded.shared_loads += 1  # a load the model never issued
    with pytest.raises(InvariantViolationError, match="shared-memory balance"):
        guarded.verify()


def test_finish_closes_the_balances(guarded):
    """An abandoned deep stack (any-hit) must not trip the occupancy laws."""
    fill(guarded, count=10)
    guarded.finish(0)
    guarded.verify()
    assert guarded.discarded == 10
    assert guarded.discarded_shared > 0 and guarded.discarded_global > 0


def test_violation_carries_diagnostics(guarded):
    guarded.ctx.cycle = 812
    guarded.ctx.warp_id = 3
    fill(guarded, lane=7, count=3)
    guarded.inner._rb[7].pop()
    with pytest.raises(InvariantViolationError) as excinfo:
        guarded.verify()
    diag = excinfo.value.diagnostics()
    assert diag["cycle"] == 812 and diag["warp"] == 3
    assert diag["lane"] == 7 and diag["component"] == "stack[slot=0]"


def test_pop_empty_still_raises_stack_error(guarded):
    """A legitimate pop-from-empty passes through as a plain StackError."""
    with pytest.raises(StackError) as excinfo:
        guarded.pop(0)
    assert not isinstance(excinfo.value, InvariantViolationError)


def test_unwrapped_reaches_the_model(guarded):
    assert guarded.unwrapped is guarded.inner
    assert isinstance(guarded.unwrapped, SmsStack)


def test_counter_coherence_detected():
    counters = Counters()
    checker = InvariantChecker(counters, sm_id=0)
    stack = checker.wrap(SmsStack(rb_entries=2, sh_entries=2), slot=0)
    checker.begin_iteration(cycle=100, warp_id=1)
    for value in range(6):  # spills into SH and global
        stack.push(0, value)
    # The RT unit normally prices these ops into the counters; "forget"
    # to do that and the coherence law must fire.
    with pytest.raises(InvariantViolationError, match="counter coherence") as e:
        checker.verify(cycle=110, warp_id=1, slot=0)
    assert e.value.diagnostics()["component"] == "counters"


def test_counter_coherence_passes_when_priced():
    counters = Counters()
    checker = InvariantChecker(counters, sm_id=0)
    stack = checker.wrap(SmsStack(rb_entries=2, sh_entries=2), slot=0)
    checker.begin_iteration(cycle=100, warp_id=1)
    for value in range(6):
        stack.push(0, value)
    counters.stack_shared_loads += stack.shared_loads
    counters.stack_shared_stores += stack.shared_stores
    counters.stack_global_loads += stack.global_loads
    counters.stack_global_stores += stack.global_stores
    checker.verify(cycle=110, warp_id=1, slot=0)


def test_checker_uses_counter_deltas():
    """Pre-existing counter traffic (an earlier SM) must not confuse
    a checker constructed afterwards."""
    counters = Counters()
    counters.stack_shared_stores = 500  # another SM's traffic
    checker = InvariantChecker(counters, sm_id=1)
    checker.wrap(SmsStack(rb_entries=8, sh_entries=8), slot=0)
    checker.verify(cycle=0, warp_id=0, slot=0)  # no new traffic: coherent
