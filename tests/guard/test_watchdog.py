"""ProgressWatchdog tests: livelock and budget detection, diagnostics."""

import pytest

from repro.errors import SimulationStallError
from repro.gpu.warp import Warp
from repro.guard.watchdog import ProgressWatchdog
from repro.stack.sms import SmsStack
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def make_warp(lanes=4, steps=8):
    traces = []
    for lane in range(lanes):
        trace = RayTrace(ray_id=lane, pixel=lane, kind=RayKind.PRIMARY)
        for index in range(steps):
            trace.steps.append(
                Step(address=0x1000 + 0x40 * index, size_bytes=64,
                     kind=NodeKind.INTERNAL, tests=1, pushes=[],
                     popped=False)
            )
        traces.append(trace)
    return Warp(warp_id=3, traces=traces)


def test_healthy_progress_never_trips():
    watchdog = ProgressWatchdog(sm_id=0, stall_window=4)
    warp = make_warp()
    clock = 0
    for _ in range(warp.lane_count * 2):
        for lane in warp.active_lanes():
            warp.advance(lane)
        clock += 10
        watchdog.observe(warp, slot=0, start=clock - 10, end=clock)


def test_livelock_detected_after_stall_window():
    watchdog = ProgressWatchdog(sm_id=0, stall_window=5)
    warp = make_warp()
    with pytest.raises(SimulationStallError, match="livelock") as excinfo:
        for step in range(10):  # cursors never advance
            watchdog.observe(warp, slot=0, start=step * 10, end=step * 10 + 10)
    error = excinfo.value
    diag = error.diagnostics()
    assert diag["warp"] == 3 and diag["component"] == "scheduler"
    assert diag["cycle"] == error.cycle > 0


def test_finished_warp_is_progress():
    """A warp that retires (done) counts as progress even with frozen
    cursors, so back-to-back completions never look like a stall."""
    watchdog = ProgressWatchdog(sm_id=0, stall_window=3)
    warp = make_warp(steps=1)
    for lane in range(warp.lane_count):
        warp.advance(lane)
    assert warp.done
    for step in range(10):
        watchdog.observe(warp, slot=0, start=step, end=step + 1)


def test_cycle_budget_overrun():
    watchdog = ProgressWatchdog(sm_id=1, max_cycles=100, stall_window=1000)
    warp = make_warp()
    watchdog.observe(warp, slot=0, start=0, end=90)
    warp.advance(0)
    with pytest.raises(SimulationStallError, match="cycle budget") as excinfo:
        watchdog.observe(warp, slot=0, start=90, end=180)
    assert excinfo.value.diagnostics()["cycle"] == 180


def test_stall_error_carries_snapshots_and_decision_log():
    watchdog = ProgressWatchdog(sm_id=0, stall_window=6, history=4)
    warp = make_warp(lanes=2)
    stack = SmsStack(rb_entries=4, sh_entries=4, warp_size=2)
    stack.push(0, 0xAAAA)
    stack.push(0, 0xBBBB)
    with pytest.raises(SimulationStallError) as excinfo:
        for step in range(10):
            watchdog.observe(
                warp, slot=0, start=step, end=step + 1, stack=stack
            )
    error = excinfo.value
    assert set(error.stack_snapshots) == {0, 1}
    assert error.stack_snapshots[0]["depth"] == 2
    assert error.stack_snapshots[0]["top"][-1] == 0xBBBB
    assert error.stack_snapshots[0]["cursor"] == warp.cursors[0]
    # ring buffer: only the last `history` decisions are retained
    assert len(error.decisions) == 4
    assert error.decisions[-1]["warp"] == 3
    assert error.decisions[-1]["end"] > error.decisions[0]["end"]


def test_snapshot_survives_corrupted_model():
    """A stack model that throws must not mask the stall diagnosis."""

    class BrokenStack:
        def depth(self, lane):
            raise RuntimeError("model is toast")

        def contents(self, lane):
            raise RuntimeError("model is toast")

    watchdog = ProgressWatchdog(sm_id=0, stall_window=1)
    warp = make_warp(lanes=1)
    with pytest.raises(SimulationStallError) as excinfo:
        for step in range(5):
            watchdog.observe(
                warp, slot=0, start=step, end=step + 1, stack=BrokenStack()
            )
    snapshot = excinfo.value.stack_snapshots[0]
    assert snapshot["depth"] is None
    # The corruption is evidence too: the masked exception rides on the
    # stall report instead of vanishing into the broad handler.
    assert snapshot["snapshot_error"] == "RuntimeError: model is toast"


def test_healthy_snapshot_has_no_error_field():
    watchdog = ProgressWatchdog(sm_id=0, stall_window=1)
    warp = make_warp(lanes=1)
    stack = SmsStack(rb_entries=4, sh_entries=4, warp_size=1)
    with pytest.raises(SimulationStallError) as excinfo:
        for step in range(5):
            watchdog.observe(warp, slot=0, start=step, end=step + 1,
                             stack=stack)
    assert "snapshot_error" not in excinfo.value.stack_snapshots[0]


def test_interleaved_progress_defers_then_stall_fires():
    """While any warp advances, the loop as a whole is healthy — the
    window only accumulates once every observed warp stops moving."""
    watchdog = ProgressWatchdog(sm_id=0, stall_window=6)
    stuck = make_warp(steps=100)
    moving = make_warp(steps=100)
    moving.warp_id = 4
    for step in range(10):  # moving resets the window each round
        watchdog.observe(stuck, slot=0, start=step, end=step + 1)
        for lane in moving.active_lanes():
            moving.advance(lane)
        watchdog.observe(moving, slot=1, start=step, end=step + 1)
    with pytest.raises(SimulationStallError) as excinfo:
        for step in range(10):  # now neither warp moves
            watchdog.observe(stuck, slot=0, start=step, end=step + 1)
            watchdog.observe(moving, slot=1, start=step, end=step + 1)
    assert excinfo.value.diagnostics()["warp"] in (3, 4)
