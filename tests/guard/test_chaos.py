"""Fault-injection campaign tests: every fault class is caught.

This is the evidence the guard layer earns its keep — each seeded fault
must be flagged with a structured error naming the cycle, warp and
component, while the fault-free guarded run stays bit-identical to the
unguarded baseline.
"""

import pytest

from repro.errors import (
    ConfigError,
    GuardViolationError,
    InvariantViolationError,
    SimulationStallError,
)
from repro.gpu.simulator import GPUSimulator
from repro.guard import FAULT_CLASSES, FaultSpec, GuardConfig, run_chaos_campaign
from repro.guard.chaos import chaos_traces, default_chaos_config


@pytest.fixture(scope="module")
def report():
    return run_chaos_campaign(seed=0)


def test_campaign_covers_every_fault_class(report):
    assert len(report.outcomes) == len(FAULT_CLASSES) >= 5
    assert [o.fault.kind for o in report.outcomes] == list(FAULT_CLASSES)


def test_all_faults_detected(report):
    undetected = [o.fault.kind for o in report.outcomes if not o.detected]
    assert not undetected, f"faults escaped the guard: {undetected}"
    assert report.all_detected, report.summary()


def test_every_detection_is_structured(report):
    """Each error names cycle, warp and component (the acceptance bar)."""
    for outcome in report.outcomes:
        assert outcome.structured, (outcome.fault.kind, outcome.diagnostics)
        assert outcome.diagnostics["component"], outcome.fault.kind


def test_stuck_warp_becomes_stall_not_hang(report):
    by_kind = {o.fault.kind: o for o in report.outcomes}
    assert by_kind["stuck_warp"].error_type == "SimulationStallError"
    assert by_kind["stuck_warp"].diagnostics["component"] == "scheduler"


def test_counter_skew_lands_on_counters_component(report):
    by_kind = {o.fault.kind: o for o in report.outcomes}
    assert by_kind["skew_counter"].diagnostics["component"] == "counters"


def test_stack_faults_name_the_slot(report):
    by_kind = {o.fault.kind: o for o in report.outcomes}
    for kind in ("corrupt_entry", "drop_reload", "phantom_entry", "borrow_cycle"):
        assert by_kind[kind].diagnostics["component"] == "stack[slot=0]", kind


def test_clean_guarded_run_bit_identical(report):
    assert report.clean_identical


def test_campaign_is_deterministic(report):
    """Same seed, same campaign: trigger points and detections repeat."""
    again = run_chaos_campaign(seed=0, kinds=("corrupt_entry", "stuck_warp"))
    by_kind = {o.fault.kind: o for o in report.outcomes}
    for outcome in again.outcomes:
        baseline = by_kind[outcome.fault.kind]
        assert outcome.fault.trigger == baseline.fault.trigger
        assert outcome.error_type == baseline.error_type
        assert outcome.diagnostics == baseline.diagnostics


def test_summary_names_each_fault(report):
    text = report.summary()
    for kind in FAULT_CLASSES:
        assert kind in text
    assert "bit-identical" in text


def test_unknown_fault_kind_rejected():
    with pytest.raises(ConfigError, match="unknown fault kind"):
        run_chaos_campaign(kinds=("not_a_fault",))
    with pytest.raises(ConfigError, match="unknown fault kind"):
        FaultSpec(kind="not_a_fault")


def test_injected_stall_raises_instead_of_hanging():
    """The acceptance scenario: a seeded no-progress loop terminates with
    a structured stall error rather than spinning forever."""
    traces = chaos_traces(rays=64, max_depth=16)
    guard = GuardConfig(
        stall_window=32, chaos=FaultSpec(kind="stuck_warp", trigger=8)
    )
    simulator = GPUSimulator(default_chaos_config(), verify_pops=False, guard=guard)
    with pytest.raises(SimulationStallError) as excinfo:
        simulator.run_traces(traces)
    error = excinfo.value
    assert error.cycle > 0 and error.warp_id is not None
    assert error.decisions, "scheduler decision log missing"
    assert error.stack_snapshots, "per-lane stack snapshots missing"


def test_injected_corruption_raises_invariant_error():
    traces = chaos_traces(rays=64, max_depth=16)
    guard = GuardConfig(chaos=FaultSpec(kind="corrupt_entry", trigger=100))
    simulator = GPUSimulator(default_chaos_config(), verify_pops=False, guard=guard)
    with pytest.raises(InvariantViolationError, match="LIFO") as excinfo:
        simulator.run_traces(traces)
    assert isinstance(excinfo.value, GuardViolationError)


def test_chaos_traces_are_deterministic_and_deep():
    first = chaos_traces(rays=16, max_depth=12, seed=5)
    second = chaos_traces(rays=16, max_depth=12, seed=5)
    assert [len(t.steps) for t in first] == [len(t.steps) for t in second]
    assert [
        [s.address for s in t.steps] for t in first
    ] == [[s.address for s in t.steps] for t in second]
    # the sawtooth actually reaches max_depth on the pinned rays
    deepest = max(
        max(len(t.steps) for t in first), 0
    )
    assert deepest >= 12
