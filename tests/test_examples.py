"""Smoke tests for the runnable examples (the fast ones, end to end)."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
EXAMPLES = REPO / "examples"


def example_env():
    """Subprocess environment with the package importable.

    The examples import ``repro`` from the src layout; an absolute
    ``PYTHONPATH`` entry keeps them runnable from any working directory
    (a relative ``PYTHONPATH=src`` breaks as soon as cwd is a tmp dir).
    """
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def run_example(name, *args, timeout=240, cwd=REPO):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=example_env(),
        timeout=timeout,
    )


def test_short_stack_walkthrough():
    result = run_example("short_stack_walkthrough.py")
    assert result.returncode == 0, result.stderr
    assert "push E" in result.stdout
    assert "GLOBAL store" in result.stdout
    assert "shared store" in result.stdout


def test_bank_mapping():
    result = run_example("bank_mapping.py", "8")
    assert result.returncode == 0, result.stderr
    assert "conflict degree 16" in result.stdout
    assert "conflict degree  2" in result.stdout


def test_overhead_report():
    result = run_example("overhead_report.py")
    assert result.returncode == 0, result.stderr
    assert "272" in result.stdout


def test_render_image(tmp_path):
    result = run_example("render_image.py", "SHIP", "16", cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    ppm = tmp_path / "render_ship.ppm"
    assert ppm.exists()
    header = ppm.read_bytes()[:20]
    assert header.startswith(b"P6 16 16 255")


def test_warp_timeline(tmp_path):
    out = tmp_path / "t.json"
    result = run_example("warp_timeline.py", "SHIP", str(out))
    assert result.returncode == 0, result.stderr
    assert out.exists()
    assert "warps in flight" in result.stdout


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "stack_depth_study.py",
        "design_space_sweep.py",
        "energy_comparison.py",
        "campaign_export.py",
        "parallel_campaign.py",
    ],
)
def test_example_compiles(name):
    """The heavier examples at least parse and carry a docstring."""
    source = (EXAMPLES / name).read_text()
    code = compile(source, name, "exec")
    assert code.co_consts[0], f"{name} missing module docstring"
