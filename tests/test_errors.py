"""Exception hierarchy tests: taxonomy, diagnostics, rendering, pickling."""

import pickle

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "GeometryError", "SceneError", "BVHError", "TraversalError",
        "StackError", "ConfigError", "SimulationError", "ExperimentError",
        "JobExecutionError", "GuardViolationError", "InvariantViolationError",
        "SimulationStallError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_guard_taxonomy():
    """Guard errors sit under SimulationError so one except catches both."""
    assert issubclass(errors.GuardViolationError, errors.SimulationError)
    assert issubclass(
        errors.InvariantViolationError, errors.GuardViolationError
    )
    assert issubclass(errors.SimulationStallError, errors.GuardViolationError)


def test_single_catch_covers_library_errors():
    """A user can catch everything the library raises with one except."""
    from repro.core.presets import named_config
    from repro.workloads.lumibench import load_scene

    with pytest.raises(errors.ReproError):
        named_config("NOT_A_CONFIG")
    with pytest.raises(errors.ReproError):
        load_scene("NOT_A_SCENE")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
    assert not issubclass(errors.ReproError, (KeyboardInterrupt, SystemExit))


def test_diagnostics_only_reports_set_fields():
    bare = errors.StackError("overflow")
    assert bare.diagnostics() == {}
    rich = errors.StackError(
        "overflow", cycle=812, sm_id=0, warp_id=3, lane=17, component="stack"
    )
    assert rich.diagnostics() == {
        "cycle": 812, "sm": 0, "warp": 3, "lane": 17, "component": "stack"
    }


def test_str_renders_diagnostics():
    error = errors.InvariantViolationError(
        "LIFO violated", cycle=812, warp_id=3, component="stack[slot=0]"
    )
    text = str(error)
    assert text.startswith("LIFO violated [")
    assert "cycle=812" in text and "warp=3" in text
    assert "component=stack[slot=0]" in text
    assert str(errors.StackError("plain")) == "plain"  # no brackets when bare


def test_stall_error_carries_snapshots_and_decisions():
    error = errors.SimulationStallError(
        "livelock",
        cycle=99, sm_id=1, warp_id=2, component="scheduler",
        stack_snapshots={0: {"cursor": 4, "depth": 2}},
        decisions=[{"warp": 2, "start": 90, "end": 99}],
    )
    assert error.stack_snapshots[0]["depth"] == 2
    assert error.decisions[-1]["end"] == 99


@pytest.mark.parametrize("cls", [
    errors.StackError, errors.SimulationError, errors.GuardViolationError,
    errors.InvariantViolationError, errors.SimulationStallError,
])
def test_diagnostic_errors_pickle_roundtrip(cls):
    """Worker processes must be able to ship these back to the parent."""
    error = cls("boom", cycle=7, sm_id=0, warp_id=1, component="x")
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is cls
    assert clone.diagnostics() == error.diagnostics()
    assert str(clone) == str(error)


def test_cause_chaining_preserved():
    inner = errors.StackError("pop from empty", cycle=5, lane=3)
    try:
        try:
            raise inner
        except errors.StackError as exc:
            raise errors.InvariantViolationError(
                "entries lost", cycle=5, component="stack[slot=0]"
            ) from exc
    except errors.InvariantViolationError as outer:
        assert outer.__cause__ is inner
