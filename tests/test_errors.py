"""Exception hierarchy tests."""

import pytest

from repro import errors


def test_all_derive_from_repro_error():
    for name in (
        "GeometryError", "SceneError", "BVHError", "TraversalError",
        "StackError", "ConfigError", "SimulationError", "ExperimentError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_single_catch_covers_library_errors():
    """A user can catch everything the library raises with one except."""
    from repro.core.presets import named_config
    from repro.workloads.lumibench import load_scene

    with pytest.raises(errors.ReproError):
        named_config("NOT_A_CONFIG")
    with pytest.raises(errors.ReproError):
        load_scene("NOT_A_SCENE")


def test_repro_error_is_exception():
    assert issubclass(errors.ReproError, Exception)
    assert not issubclass(errors.ReproError, (KeyboardInterrupt, SystemExit))
