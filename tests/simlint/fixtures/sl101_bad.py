"""SL101 positive: wall-clock and host-clock reads in timing code."""

import time
from datetime import datetime


def stamp_cycle(record):
    started = time.time()
    tagged = datetime.now()
    time.sleep(0.01)
    return record, started, tagged
