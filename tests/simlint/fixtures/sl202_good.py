"""SL202 negative: literal, enumerable __slots__."""


class Step:
    __slots__ = ("address", "size_bytes", "tests")

    def __init__(self, address, size_bytes, tests):
        self.address = address
        self.size_bytes = size_bytes
        self.tests = tests
