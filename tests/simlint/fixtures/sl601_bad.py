"""Float-promoting counter math (bad): parity is bitwise on ints."""


class Fold:
    def accumulate(self, counters, tests, lanes):
        counters.box_tests += tests.sum() / lanes
        counters.l1_hits = counters.l1_hits + 0.5
