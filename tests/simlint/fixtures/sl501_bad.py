"""Blocking calls inside async defs (bad): each one stalls the loop."""
import subprocess
import time


async def poll(handle):
    time.sleep(0.1)
    subprocess.run(["sync"], check=True)
    data = open("state.json").read()
    return data
