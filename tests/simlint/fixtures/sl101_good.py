"""SL101 negative: only the simulated clock, plus a sanctioned read."""

import time


def advance(state, cycles):
    state.now += cycles
    return state.now


def metadata():
    # Sanctioned: metadata outside the simulated clock.
    return {"created": time.time()}  # simlint: disable=SL101
