"""SL401 negative: None sentinel, fresh object per call."""


def collect(value, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(value)
    return bucket


def scale(value, factor=2, label=""):
    return value * factor, label
