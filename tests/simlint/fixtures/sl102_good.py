"""SL102 negative: explicitly seeded generators passed down."""

import random

import numpy as np


def jitter(values, seed):
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    local.shuffle(values)
    return values[0] + rng.standard_normal()
