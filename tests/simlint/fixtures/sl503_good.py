"""Lock discipline (good): async critical sections use asyncio.Lock."""
import asyncio
import threading


class Books:
    def __init__(self):
        self._serial = asyncio.Lock()
        self._stats_lock = threading.Lock()
        self.total = 0

    async def admit(self, job):
        async with self._serial:
            await self.route(job)

    def record(self, value):
        # Sync lock in sync code: nothing can await while it is held.
        with self._stats_lock:
            self.total += value
