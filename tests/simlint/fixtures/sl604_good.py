"""Validated CSR slices (good): invariants checked before indexing."""
from repro.errors import SimulationError


def rows(payload, offsets):
    if not offsets or offsets[-1] != len(payload):
        raise SimulationError("CSR offsets do not cover the payload")
    return [
        payload[offsets[k]:offsets[k + 1]]
        for k in range(len(offsets) - 1)
    ]


class Unpack:
    def pushes_for(self, soa, k):
        self._validate_offsets(soa.push_off, soa.pushes)
        return soa.pushes[soa.push_off[k]:soa.push_off[k + 1]]

    def _validate_offsets(self, off, payload):
        if not len(off) or off[-1] != len(payload):
            raise SimulationError("CSR offsets do not cover the payload")
