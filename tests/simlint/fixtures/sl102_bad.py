"""SL102 positive: process-global and unseeded RNG."""

import random

import numpy as np


def jitter(values):
    rng = np.random.default_rng()
    random.shuffle(values)
    return values[0] + random.random() + rng.standard_normal()
