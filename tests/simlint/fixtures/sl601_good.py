"""Integral counter math (good): exact ops, int() only after exact math."""


class Fold:
    def accumulate(self, counters, tests, lanes):
        counters.box_tests += int(tests.sum()) // max(lanes, 1)
        counters.l1_hits = counters.l1_hits + 1
        counters.steps = int(tests.sum())
