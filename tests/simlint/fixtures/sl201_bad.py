"""SL201 positive: in-place mutation of module-level singletons."""

from repro.stack.ops import EMPTY_ACTIVITY

LANE_TABLE = {}


def patch_defaults(extra):
    EMPTY_ACTIVITY.extra_cycles = 1
    EMPTY_ACTIVITY.ops.append(extra)
    LANE_TABLE["warp"] = extra
