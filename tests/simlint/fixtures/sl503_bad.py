"""Awaits under synchronous locks (bad): the loop parks with the lock held."""
import threading

_publish_lock = threading.Lock()


class Books:
    def __init__(self):
        self._admit_lock = threading.Lock()

    async def admit(self, job):
        with self._admit_lock:
            await self.route(job)

    async def publish(self, payload):
        with _publish_lock:
            await self.bus.put(payload)
