"""SL204 negative: fast-forward writes are a subset of stepped writes;
branch-private scratch locals are allowed."""


class MiniUnit:
    def __init__(self):
        self.fast_forward = True
        self.retired = 0

    def run(self, warps):
        pending = list(warps)
        completion = 0
        while pending:
            if self.fast_forward and len(pending) == 1:
                warp = pending[0]  # branch-private scratch binding
                end = self._step(warp, completion)
                self.retired += 1
                completion = max(completion, end)
                pending.clear()
                continue
            chosen = pending.pop(0)
            end = self._step(chosen, completion)
            self.retired += 1
            completion = max(completion, end)
        return completion

    def _step(self, warp, start):
        warp.ready_time = start + 1
        return warp.ready_time
