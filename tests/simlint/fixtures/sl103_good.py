"""SL103 negative: sorted iteration and commutative reductions."""


def emit_events(warps, pending):
    events = []
    for warp in sorted(set(warps), key=lambda w: w.warp_id):
        events.append(warp.warp_id)
    total = sum(op.cycles for op in pending.values())
    deepest = max({1, 2, 3})
    return events, total, deepest
