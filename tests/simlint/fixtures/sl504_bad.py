"""Stale read-modify-write across awaits (bad): lost updates."""


class Admission:
    async def reserve(self, cost):
        inflight = self._inflight
        budget = await self.quota()
        self._inflight = inflight + cost
        return budget

    async def charge(self, ticket):
        self._spent += await self.price(ticket)
