"""SL201 negative: copy instead of patch; locals may mutate freely."""

from repro.stack.ops import EMPTY_ACTIVITY


def widened(extra):
    activity = type(EMPTY_ACTIVITY)(ops=[extra], extra_cycles=1)
    table = {}
    table["warp"] = extra
    return activity, table
