"""SL203 negative: reading counters is fine anywhere."""


def summarize(counters):
    total = counters.instructions + counters.warp_steps
    return {"total": total, "cycles": counters.cycles}
