"""Non-blocking async bodies (good): sleeps and I/O go through the loop."""
import asyncio


async def poll(handle, loop):
    await asyncio.sleep(0.1)
    data = await loop.run_in_executor(None, handle.read_state)
    return data


def snapshot(handle):
    # Sync helpers may block: they run in the executor, not on the loop.
    return open("state.json").read()
