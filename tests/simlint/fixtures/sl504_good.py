"""Atomic read-modify-write (good): locked, or re-read after the await."""


class Admission:
    async def reserve(self, cost):
        async with self._lock:
            inflight = self._inflight
            budget = await self.quota()
            self._inflight = inflight + cost
        return budget

    async def charge(self, ticket):
        price = await self.price(ticket)
        self._spent += price
