"""Consumed coroutine calls (good): awaited or scheduled as tasks."""
import asyncio


async def flush(shard):
    await shard.drain()


class Router:
    async def _notify(self, event):
        await self.bus.put(event)

    async def dispatch(self, shard, event):
        await flush(shard)
        task = asyncio.create_task(self._notify(event))
        await task
