"""SL401 positive: mutable defaults shared across calls."""


def collect(value, bucket=[]):
    bucket.append(value)
    return bucket


def tally(key, *, counts=dict()):
    counts[key] = counts.get(key, 0) + 1
    return counts
