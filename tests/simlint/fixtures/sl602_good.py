"""SoA mirror cache access (good): sanctioned writers and pure reads."""
from repro.gpu.vector.soa import trace_cache


def warp_plan(trace, plan):
    cache = trace_cache(trace)
    cache["plan"] = plan
    return plan


def lookup(trace):
    cache = trace_cache(trace)
    return cache.get("soa")
