"""SL301 positive: raw builtin exceptions from timing-critical code."""


def pop_frame(stack, lane):
    if not stack:
        raise ValueError("stack underflow")
    if lane < 0:
        raise Exception("bad lane")
    return stack.pop()
