"""Stable numpy ordering (good): explicit kinds and ordered operands."""
import numpy as np


def order(keys):
    return np.argsort(keys, kind="stable")


def total(values):
    return np.sum(sorted(set(values)))
