"""SL103 positive: set and dict-view iteration feeding ordered code."""


def emit_events(warps, pending):
    events = []
    for warp in set(warps):
        events.append(warp.warp_id)
    for op in pending.values():
        events.append(op)
    lanes = [lane for lane in {1, 2, 3}]
    return events, lanes
