"""SL302 negative: broad handlers that record or re-raise."""


def load_with_record(path, report):
    try:
        return open(path).read()
    except Exception as masked:
        report["load_error"] = f"{type(masked).__name__}: {masked}"
        return None


def load_and_reraise(path):
    try:
        return open(path).read()
    except Exception:
        raise
