"""SL202 positive: computed __slots__ and a __dict__ backdoor."""

FIELDS = ("a", "b")


class ComputedSlots:
    __slots__ = tuple(FIELDS)


class DictBackdoor:
    __slots__ = ("a", "__dict__")
