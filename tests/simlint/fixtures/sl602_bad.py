"""SoA mirror cache mutation (bad): outside the sanctioned writers."""
from repro.gpu.vector.soa import trace_cache


def patch(trace, soa):
    cache = trace._vector_cache
    cache["soa"] = soa


def evict(trace):
    entries = trace_cache(trace)
    entries.pop("soa")
