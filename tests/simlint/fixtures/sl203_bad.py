"""SL203 positive: counter writes from a non-owning component."""


def reconcile(result, counters):
    counters.instructions += 10
    result.counters.cycles = 0
    return result
