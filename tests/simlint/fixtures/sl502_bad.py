"""Discarded coroutine calls (bad): the bodies never run."""


async def flush(shard):
    await shard.drain()


class Router:
    async def _notify(self, event):
        await self.bus.put(event)

    async def dispatch(self, shard, event):
        flush(shard)
        self._notify(event)
