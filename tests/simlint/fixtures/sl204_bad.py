"""SL204 positive: the fast-forward drain writes state the stepped
loop never touches (both an attribute and a loop-carried local)."""


class MiniUnit:
    def __init__(self):
        self.fast_forward = True
        self.drained = 0

    def run(self, warps):
        pending = list(warps)
        completion = 0
        bonus = 0
        while pending:
            if self.fast_forward and len(pending) == 1:
                warp = pending[0]
                end = self._step(warp, completion)
                self.drained += 1
                bonus = end
                completion = max(completion, end)
                pending.clear()
                continue
            warp = pending.pop(0)
            end = self._step(warp, completion)
            completion = max(completion, end)
        return completion + bonus

    def _step(self, warp, start):
        warp.ready_time = start + 1
        return warp.ready_time
