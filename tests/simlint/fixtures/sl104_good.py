"""SL104 negative: identity search and stable-field ordering."""


def dedupe_regions(chains):
    seen = []
    for lane, chain in enumerate(chains):
        for region in chain:
            for held, holder in seen:
                if held is region:
                    return holder
            seen.append((region, lane))
    return None
