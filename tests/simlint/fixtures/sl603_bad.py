"""Unstable numpy ordering (bad): ties and hash order diverge per run."""
import numpy as np


def order(keys):
    return np.argsort(keys)


def total(values):
    return np.sum(set(values))
