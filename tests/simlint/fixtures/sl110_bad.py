"""Tainted key derivation (bad): entropy reaches the declared sinks."""
import time


def _token():
    return time.perf_counter()


def cache_key(job):
    stamp = _token()
    return f"{job}-{stamp}"


def content_key(items):
    ordered = list({item for item in items})
    return "|".join(str(item) for item in ordered)


def salt(obj):
    return str(id(obj))
