"""SL301 negative: DiagnosticError subclasses carry coordinates."""

from repro.errors import StackUnderflowError


def pop_frame(stack, lane, cycle):
    if not stack:
        raise StackUnderflowError(cycle=cycle, lane=lane)
    return stack.pop()
