"""Unchecked CSR slices (bad): clamped slices hide truncated offsets."""


def rows(payload, offsets):
    return [
        payload[offsets[k]:offsets[k + 1]]
        for k in range(len(offsets) - 1)
    ]


class Unpack:
    def pushes_for(self, soa, k):
        return soa.pushes[soa.push_off[k]:soa.push_off[k + 1]]
