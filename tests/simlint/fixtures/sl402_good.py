"""SL402 negative: return the text; let the CLI layer present it."""

import logging

log = logging.getLogger(__name__)


def report_progress(done, total):
    log.info("%d/%d jobs complete", done, total)
    return f"{done}/{total} jobs complete"
