"""SL402 positive: print() from library code."""


def report_progress(done, total):
    print(f"{done}/{total} jobs complete")
    return done == total
