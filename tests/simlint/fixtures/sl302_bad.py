"""SL302 positive: broad handlers that erase the exception."""


def load_quietly(path):
    try:
        return open(path).read()
    except Exception:
        return None


def poll(queue):
    try:
        return queue.get_nowait()
    except:  # noqa: E722
        return None
