"""Pure key derivation (good): sinks depend only on declared inputs."""


def _token(seed):
    return seed * 2654435761 % (2 ** 32)


def cache_key(job, seed):
    stamp = _token(seed)
    return f"{job}-{stamp}"


def content_key(items):
    ordered = sorted({item for item in items})
    return "|".join(str(item) for item in ordered)


def salt(job, seed):
    return f"{job}:{seed}"
