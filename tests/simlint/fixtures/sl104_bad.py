"""SL104 positive: id()-keyed bookkeeping of model objects."""


def dedupe_regions(chains):
    seen = {}
    for lane, chain in enumerate(chains):
        for region in chain:
            if id(region) in seen:
                return seen[id(region)]
            seen[id(region)] = lane
    return None
