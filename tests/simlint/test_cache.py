"""The incremental analysis cache: warm runs parse nothing.

The acceptance property of the cache is asserted here directly: a warm
re-lint of the full ``src/`` tree performs zero ``ast.parse`` calls and
runs at least 5x faster than the cold pass.  The invalidation unit is
also pinned — editing one file re-analyzes exactly that file plus the
import-closure dependents of cross-file rules, and a config change
discards the cache wholesale.
"""

import time
from pathlib import Path

from repro.simlint import lint_paths, load_config
from repro.simlint.cache import AnalysisCache, run_fingerprint
from repro.simlint.config import LintConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_tree(root):
    """A three-module project: gpu/mod.py depends on util.py."""
    pkg = root / "src" / "repro"
    (pkg / "gpu").mkdir(parents=True)
    (pkg / "util.py").write_text(
        '"""Helpers."""\n\n\ndef scale(value):\n    return value * 2\n'
    )
    (pkg / "gpu" / "mod.py").write_text(
        '"""Fold."""\n\nfrom repro.util import scale\n\n\n'
        'def fold(value):\n'
        '    print(value)\n'            # deliberate SL402 finding
        '    return scale(value) + 1\n'
    )
    (pkg / "gpu" / "other.py").write_text(
        '"""Standalone."""\n\n\ndef triple(value):\n    return value * 3\n'
    )
    return root / "src"


def run(src, cache_file, config):
    cache = AnalysisCache.load(cache_file, config)
    return lint_paths([str(src)], config=config, cache=cache)


def test_warm_run_replays_identical_findings_without_parsing(tmp_path):
    src = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    config = LintConfig()

    cold = run(src, cache_file, config)
    assert cold.files == 3
    assert cold.reparsed == 3
    assert cold.analyzed == 3
    assert cold.cache_hits == 0
    assert [f.rule for f in cold.findings] == ["SL402"]

    warm = run(src, cache_file, config)
    assert warm.files == 3
    assert warm.reparsed == 0
    assert warm.analyzed == 0
    assert warm.cache_hits == 6  # local + cross-file phase per file
    assert ([f.to_dict() for f in warm.findings]
            == [f.to_dict() for f in cold.findings])


def test_editing_a_dependency_invalidates_exactly_its_dependents(tmp_path):
    src = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    config = LintConfig()
    run(src, cache_file, config)

    util = src / "repro" / "util.py"
    util.write_text(util.read_text().replace("value * 2", "value * 4"))
    report = run(src, cache_file, config)
    # util.py re-parses (content changed); gpu/mod.py re-parses only for
    # its cross-file phase (util is in its import closure); other.py is
    # untouched and replays both phases from cache.
    assert report.reparsed == 2
    assert report.analyzed == 2
    assert report.cache_hits == 3  # mod local phase + both other phases


def test_config_change_discards_the_cache(tmp_path):
    src = make_tree(tmp_path)
    cache_file = tmp_path / "cache.json"
    config = LintConfig()
    run(src, cache_file, config)

    retuned = LintConfig(taint_sinks=("content_key",))
    assert run_fingerprint(retuned) != run_fingerprint(config)
    report = run(src, cache_file, retuned)
    assert report.reparsed == 3
    assert report.cache_hits == 0


def test_broken_files_are_cached_without_reparsing(tmp_path):
    src = make_tree(tmp_path)
    (src / "repro" / "broken.py").write_text("def oops(:\n")
    cache_file = tmp_path / "cache.json"
    config = LintConfig()

    cold = run(src, cache_file, config)
    assert [entry[0] for entry in cold.broken] == [
        (src / "repro" / "broken.py").as_posix()
    ]
    assert cold.exit_code == 2

    warm = run(src, cache_file, config)
    assert warm.reparsed == 0
    assert len(warm.broken) == 1
    assert warm.exit_code == 2


def test_acceptance_full_src_warm_lint_parses_nothing_and_is_5x_faster(
    tmp_path,
):
    """The ISSUE acceptance criterion, asserted against the real tree."""
    config = load_config(REPO_ROOT / "pyproject.toml")
    cache_file = tmp_path / "cache.json"
    src = REPO_ROOT / "src"

    start = time.perf_counter()
    cold = run(src, cache_file, config)
    cold_elapsed = time.perf_counter() - start
    assert cold.files > 50
    assert cold.reparsed == cold.files

    start = time.perf_counter()
    warm = run(src, cache_file, config)
    warm_elapsed = time.perf_counter() - start
    assert warm.reparsed == 0
    assert warm.analyzed == 0
    assert warm.cache_hits == 2 * warm.files
    assert ([f.to_dict() for f in warm.findings]
            == [f.to_dict() for f in cold.findings])
    assert cold_elapsed >= 5 * warm_elapsed, (
        f"warm lint not fast enough: cold {cold_elapsed:.3f}s vs "
        f"warm {warm_elapsed:.3f}s"
    )
