"""Seeded red-gates for the SL5xx concurrency family and SL110 taint.

Each test copies the *real* coordinator into a scratch tree, seeds one
textbook event-loop hazard into it, and lints through the real config:
the gate must flip to exit code 1 with exactly the expected rule.  The
unmodified copy linting clean is the control.
"""

import shutil
from pathlib import Path

from repro.simlint import lint_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The poll-loop tick: every seed below lands inside `_poll_loop`, an
#: async def running on the coordinator's event loop.
NEEDLE = "await self.clock.sleep(self.config.poll_tick)"


def seeded_report(tmp_path, mutate):
    tree = tmp_path / "src" / "repro" / "service"
    tree.mkdir(parents=True)
    target = tree / "coordinator.py"
    shutil.copyfile(
        REPO_ROOT / "src" / "repro" / "service" / "coordinator.py", target
    )
    source = target.read_text()
    mutated = mutate(source)
    assert mutated != source, "seed did not apply"
    target.write_text(mutated)
    config = load_config(REPO_ROOT / "pyproject.toml")
    return lint_paths([str(tmp_path / "src")], config=config)


def rules_of(report):
    return sorted({f.rule for f in report.errors})


def test_unmodified_coordinator_is_clean(tmp_path):
    report = seeded_report(tmp_path, lambda s: s + "\n# control copy\n")
    assert report.errors == [], rules_of(report)
    assert report.exit_code == 0


def test_seeded_blocking_sleep_fires_sl501(tmp_path):
    report = seeded_report(tmp_path, lambda s: s.replace(
        NEEDLE, "import time; time.sleep(self.config.poll_tick)", 1
    ))
    assert report.exit_code == 1
    # The call-site clock rules co-fire (repro.service is also
    # timing-critical); the event-loop hazard itself must be SL501.
    assert "SL501" in rules_of(report)


def test_seeded_discarded_coroutine_fires_sl502(tmp_path):
    report = seeded_report(tmp_path, lambda s: s.replace(
        "await self._degrade_stranded()", "self._degrade_stranded()", 1
    ))
    assert report.exit_code == 1
    assert rules_of(report) == ["SL502"]


def test_seeded_await_under_sync_lock_fires_sl503(tmp_path):
    report = seeded_report(tmp_path, lambda s: s.replace(
        NEEDLE,
        "with self._poll_lock:\n                " + NEEDLE,
        1,
    ))
    assert report.exit_code == 1
    assert rules_of(report) == ["SL503"]


def test_seeded_stale_read_modify_write_fires_sl504(tmp_path):
    seed = (
        "depth = self.metrics.queue_depth\n"
        "            await self._degrade_stranded()\n"
        "            self.metrics.queue_depth = depth + 1"
    )
    report = seeded_report(tmp_path, lambda s: s.replace(
        "await self._degrade_stranded()", seed, 1
    ))
    assert report.exit_code == 1
    assert rules_of(report) == ["SL504"]


def test_seeded_tainted_cache_key_fires_sl110(tmp_path):
    seed = (
        "\n\ndef cache_key(entry):\n"
        "    return f\"{id(entry):x}\"\n"
    )
    report = seeded_report(tmp_path, lambda s: s + seed)
    assert report.exit_code == 1
    # SL104 co-fires on the direct id() call (timing-critical scope);
    # SL110 is the flow finding: the taint reaches the sink's return.
    assert "SL110" in rules_of(report)
