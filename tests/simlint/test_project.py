"""The whole-program substrate: summaries, symbol table, call graph.

Covers the resolution machinery the cross-file rules stand on: alias
chains (re-exports), import cycles, decorated definitions, closure
fingerprints as cache-invalidation keys, and transitive write surfaces.
"""

import textwrap

from repro.simlint.engine import FileContext
from repro.simlint.project import (
    FileSummary,
    ProjectGraph,
    content_hash,
    summarize_file,
)


def summarize(source, path, module):
    source = textwrap.dedent(source)
    ctx = FileContext(path, source, module=module)
    return summarize_file(ctx.tree, path, module, ctx.imports, source)


def graph_of(**modules):
    """ProjectGraph from {dotted_module: source} keyword pairs."""
    summaries = []
    for module, source in modules.items():
        path = "src/" + module.replace(".", "/") + ".py"
        summaries.append(summarize(source, path, module))
    return ProjectGraph(summaries)


# ---------------------------------------------------------------------------
# summaries


def test_function_table_records_async_and_methods():
    summary = summarize(
        """
        def helper():
            return 1

        class Runner:
            def step(self):
                return helper()

            async def poll(self):
                return 2
        """,
        "src/repro/m.py", "repro.m",
    )
    assert set(summary.functions) == {"helper", "Runner.step", "Runner.poll"}
    assert not summary.functions["helper"].is_async
    assert summary.functions["Runner.poll"].is_async


def test_decorated_defs_are_summarized():
    summary = summarize(
        """
        import functools

        @functools.lru_cache(maxsize=None)
        def cached():
            return 1

        class Service:
            @property
            def name(self):
                return "s"
        """,
        "src/repro/m.py", "repro.m",
    )
    assert set(summary.functions) == {"cached", "Service.name"}


def test_calls_resolve_through_imports_self_and_local_defs():
    summary = summarize(
        """
        from repro.a import spawn

        def helper():
            return 1

        def entry():
            spawn()
            return helper()

        class C:
            def step(self):
                self._tick()
        """,
        "src/repro/m.py", "repro.m",
    )
    assert "repro.a.spawn" in summary.functions["entry"].calls
    assert "repro.m.helper" in summary.functions["entry"].calls
    assert summary.functions["C.step"].calls == ("repro.m.C._tick",)


def test_write_keys_are_normalized():
    summary = summarize(
        """
        def mutate(warp, cursors, resident, lane):
            warp.ready_time = 3
            cursors[lane] = 0
            resident.clear()
        """,
        "src/repro/m.py", "repro.m",
    )
    assert summary.functions["mutate"].writes == (
        "cursors", "resident", "warp.ready_time",
    )


def test_summary_round_trip_and_schema_gate():
    summary = summarize(
        """
        import time

        def stamp():
            return time.time()
        """,
        "src/repro/m.py", "repro.m",
    )
    assert FileSummary.from_dict(summary.to_dict()) == summary
    stale = summary.to_dict()
    stale["schema"] = 1
    assert FileSummary.from_dict(stale) is None


def test_content_hash_is_exact_text():
    assert content_hash("a = 1\n") != content_hash("a = 1")
    assert content_hash("a = 1\n") == content_hash("a = 1\n")


# ---------------------------------------------------------------------------
# symbol resolution


def test_resolve_follows_reexport_chains():
    graph = graph_of(**{
        "repro.a": "def f():\n    return 1\n",
        "repro.b": "from repro.a import f\n",
        "repro.c": "from repro.b import f as g\n",
    })
    assert graph.resolve("repro.c.g") == "repro.a.f"
    assert graph.resolve("repro.b.f") == "repro.a.f"
    assert graph.resolve("repro.a.f") == "repro.a.f"


def test_resolve_terminates_on_alias_cycles():
    graph = graph_of(**{
        "repro.x": "from repro.y import f\n",
        "repro.y": "from repro.x import f\n",
    })
    assert graph.resolve("repro.x.f") is None
    assert graph.resolve("repro.unknown.g") is None


def test_is_async_through_an_alias():
    graph = graph_of(**{
        "repro.a": "async def poll():\n    return 1\n",
        "repro.b": "from repro.a import poll\n",
    })
    assert graph.is_async("repro.b.poll")
    assert not graph.is_async("repro.a.missing")


# ---------------------------------------------------------------------------
# dependencies and fingerprints


def test_import_closure_handles_cycles():
    graph = graph_of(**{
        "repro.a": "from repro.b import g\n\ndef f():\n    return g()\n",
        "repro.b": "from repro.a import f\n\ndef g():\n    return 1\n",
        "repro.c": "def lonely():\n    return 0\n",
    })
    assert graph.import_closure("repro.a") == ("repro.a", "repro.b")
    assert graph.import_closure("repro.c") == ("repro.c",)


def test_closure_fingerprint_tracks_transitive_dependencies():
    sources = {
        "repro.a": "from repro.b import g\n",
        "repro.b": "from repro.c import h\n",
        "repro.c": "def h():\n    return 1\n",
        "repro.d": "def unrelated():\n    return 2\n",
    }
    before = graph_of(**sources)
    edited = dict(sources, **{"repro.c": "def h():\n    return 99\n"})
    after = graph_of(**edited)
    # Editing c invalidates a (a -> b -> c) but not d.
    assert (before.closure_fingerprint("src/repro/a.py")
            != after.closure_fingerprint("src/repro/a.py"))
    assert (before.closure_fingerprint("src/repro/d.py")
            == after.closure_fingerprint("src/repro/d.py"))


def test_closure_fingerprint_unchanged_by_unrelated_edits():
    sources = {
        "repro.a": "from repro.b import g\n",
        "repro.b": "def g():\n    return 1\n",
        "repro.d": "def unrelated():\n    return 2\n",
    }
    before = graph_of(**sources)
    after = graph_of(**dict(sources, **{
        "repro.d": "def unrelated():\n    return 3\n",
    }))
    assert (before.closure_fingerprint("src/repro/a.py")
            == after.closure_fingerprint("src/repro/a.py"))


# ---------------------------------------------------------------------------
# call graph reachability


def test_reachable_writes_cross_module():
    graph = graph_of(**{
        "repro.a": (
            "from repro.b import fold\n"
            "\n"
            "def run(counters):\n"
            "    fold(counters)\n"
        ),
        "repro.b": (
            "def fold(counters):\n"
            "    counters.box_tests = 1\n"
        ),
    })
    assert "counters.box_tests" in graph.reachable_writes("repro.a.run")


def test_reachable_terminates_on_call_cycles():
    graph = graph_of(**{
        "repro.a": (
            "from repro.b import pong\n"
            "\n"
            "def ping():\n"
            "    return pong()\n"
        ),
        "repro.b": (
            "from repro.a import ping\n"
            "\n"
            "def pong():\n"
            "    return ping()\n"
        ),
    })
    assert graph.reachable(["repro.a.ping"]) == {"repro.a.ping", "repro.b.pong"}
