"""Reporter tests: the JSON/SARIF contracts CI parses, and the text form."""

import json

from repro.simlint import lint_paths, render_json, render_sarif, render_text
from repro.simlint.baseline import Baseline
from repro.simlint.reporters import REPORT_SCHEMA_VERSION, summary_line


def report_with_violation(tmp_path, baseline=None):
    tree = tmp_path / "repro"
    tree.mkdir(exist_ok=True)
    (tree / "mod.py").write_text('print("x")\n')
    return lint_paths([str(tmp_path)], baseline=baseline)


def test_json_schema_contract(tmp_path):
    payload = json.loads(render_json(report_with_violation(tmp_path)))
    assert payload["schema"] == REPORT_SCHEMA_VERSION
    assert payload["tool"] == "repro.simlint"
    assert payload["exit_code"] == 1
    summary = payload["summary"]
    assert set(summary) == {
        "files", "errors", "warnings", "baselined", "suppressed", "broken",
        "analyzed", "reparsed", "cache_hits",
    }
    assert summary["files"] == 1 and summary["errors"] == 1
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message", "text",
        "context_hash", "baselined",
    }
    assert finding["rule"] == "SL402" and finding["baselined"] is False
    assert len(finding["context_hash"]) == 16
    assert payload["broken"] == []


def test_json_reports_broken_files(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "broken.py").write_text("def oops(:\n")
    payload = json.loads(render_json(lint_paths([str(tmp_path)])))
    assert payload["exit_code"] == 2
    assert payload["summary"]["broken"] == 1
    assert payload["broken"][0]["path"].endswith("broken.py")


def test_text_rendering(tmp_path):
    report = report_with_violation(tmp_path)
    text = render_text(report)
    assert "SL402 error:" in text
    assert "mod.py:1:1" in text
    assert summary_line(report) in text
    assert "1 error(s)" in summary_line(report)


def test_sarif_contract(tmp_path):
    """The code-scanning subset: driver, rule catalog, fingerprints."""
    payload = json.loads(render_sarif(report_with_violation(tmp_path)))
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.simlint"
    # Only fired rules appear in the catalog, and results index into it.
    (rule,) = driver["rules"]
    assert rule["id"] == "SL402"
    assert rule["shortDescription"]["text"]
    assert rule["fullDescription"]["text"]
    (result,) = run["results"]
    assert result["ruleId"] == "SL402"
    assert result["ruleIndex"] == 0
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("mod.py")
    assert location["region"]["startLine"] == 1
    fingerprint = result["partialFingerprints"]["contextHash/v1"]
    assert len(fingerprint) == 16


def test_sarif_omits_baselined_findings(tmp_path):
    baseline = Baseline([{
        "path": (tmp_path / "repro" / "mod.py").as_posix(),
        "rule": "SL402",
        "text": 'print("x")',
    }])
    payload = json.loads(render_sarif(
        report_with_violation(tmp_path, baseline=baseline)
    ))
    assert payload["runs"][0]["results"] == []


def test_baselined_findings_hidden_unless_asked(tmp_path):
    baseline = Baseline([{
        "path": (tmp_path / "repro" / "mod.py").as_posix(),
        "rule": "SL402",
        "text": 'print("x")',
    }])
    report = report_with_violation(tmp_path, baseline=baseline)
    assert report.exit_code == 0
    assert "SL402" not in render_text(report)
    assert "[baselined]" in render_text(report, show_baselined=True)
    payload = json.loads(render_json(report))
    assert payload["summary"]["baselined"] == 1
    assert payload["findings"][0]["baselined"] is True
