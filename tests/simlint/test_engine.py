"""Engine tests: module mounting, suppressions, discovery, exit codes."""

import pytest

from repro.errors import ReproError
from repro.simlint import lint_paths, lint_source
from repro.simlint.config import LintConfig
from repro.simlint.engine import FileContext, module_name

PRINT = 'print("hello")\n'


# -- module resolution ----------------------------------------------------

def test_module_name_from_src_path():
    assert module_name("src/repro/gpu/rt_unit.py") == "repro.gpu.rt_unit"
    assert module_name("src/repro/__init__.py") == "repro"
    assert module_name("src/repro/stack/__init__.py") == "repro.stack"


def test_module_name_outside_package_is_none():
    assert module_name("tests/core/test_cli.py") is None
    assert module_name("tools/gen_api_docs.py") is None


def test_import_alias_resolution():
    ctx = FileContext("x.py", "import numpy as np\nr = np.random.default_rng()\n")
    call = ctx.tree.body[1].value
    assert ctx.resolve(call.func) == "numpy.random.default_rng"


def test_from_import_resolution():
    ctx = FileContext("x.py", "from time import time as now\nt = now()\n")
    call = ctx.tree.body[1].value
    assert ctx.resolve(call.func) == "time.time"


# -- suppressions ---------------------------------------------------------

def test_same_line_suppression():
    source = 'print("a")  # simlint: disable=SL402\n'
    assert lint_source(source, module="repro.gpu.x") == []


def test_comment_above_suppression_covers_next_code_line():
    source = (
        "# rendered banner is the contract here\n"
        "# simlint: disable=SL402\n"
        'print("a")\n'
        'print("b")\n'
    )
    findings = lint_source(source, module="repro.gpu.x")
    assert [f.line for f in findings] == [4]


def test_file_level_suppression():
    source = '# simlint: disable-file=SL402\nprint("a")\nprint("b")\n'
    assert lint_source(source, module="repro.gpu.x") == []


def test_suppression_is_rule_specific():
    source = 'print("a")  # simlint: disable=SL101\n'
    findings = lint_source(source, module="repro.gpu.x")
    assert [f.rule for f in findings] == ["SL402"]


def test_multiple_ids_in_one_directive():
    source = (
        "import time\n"
        "t = (time.time(), print(1))  # simlint: disable=SL101,SL402\n"
    )
    assert lint_source(source, module="repro.gpu.x") == []


# -- config knobs ---------------------------------------------------------

def test_disabled_rule_never_fires():
    config = LintConfig(disabled=("SL402",))
    assert lint_source(PRINT, module="repro.gpu.x", config=config) == []


def test_severity_override_downgrades_to_warning(tmp_path):
    tree = tmp_path / "repro" / "gpu"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text(PRINT)
    config = LintConfig(severity={"SL402": "warning"})
    report = lint_paths([str(tmp_path)], config=config)
    assert [f.severity for f in report.findings] == ["warning"]
    assert report.errors == [] and len(report.warnings) == 1
    assert report.exit_code == 0  # warnings never gate


def test_print_allowed_modules_skip_sl402():
    config = LintConfig(print_allowed=("repro.cli",))
    assert lint_source(PRINT, module="repro.cli", config=config) == []


# -- discovery, reporting, exit codes -------------------------------------

def test_lint_paths_counts_suppressions(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "a.py").write_text('print("x")  # simlint: disable=SL402\n')
    report = lint_paths([str(tmp_path)])
    assert report.files == 1
    assert report.findings == []
    assert report.suppressed == 1
    assert report.exit_code == 0


def test_exclude_pattern_skips_tree(tmp_path):
    tree = tmp_path / "repro" / "fixtures"
    tree.mkdir(parents=True)
    (tree / "bad.py").write_text(PRINT)
    clean = lint_paths([str(tmp_path)], config=LintConfig(exclude=("fixtures",)))
    assert clean.files == 0 and clean.findings == []
    dirty = lint_paths([str(tmp_path)])
    assert [f.rule for f in dirty.findings] == ["SL402"]


def test_broken_file_reports_exit_code_2(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "broken.py").write_text("def oops(:\n")
    (tree / "fine.py").write_text("x = 1\n")
    report = lint_paths([str(tmp_path)])
    assert len(report.broken) == 1
    assert report.broken[0][0].endswith("broken.py")
    assert report.files == 1  # the parseable file still linted
    assert report.exit_code == 2


def test_missing_target_raises():
    with pytest.raises(ReproError, match="does not exist"):
        lint_paths(["no/such/tree"])


def test_findings_sorted_and_stable(tmp_path):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "b.py").write_text(PRINT)
    (tree / "a.py").write_text(PRINT * 2)
    report = lint_paths([str(tmp_path)])
    keys = [(f.path, f.line) for f in report.findings]
    assert keys == sorted(keys)
    assert report.exit_code == 1
