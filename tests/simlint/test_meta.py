"""Meta-tests: the repository passes its own lint, and the gate is live.

These are the two properties the CI job depends on: ``repro lint src/``
(and ``tests/``) is clean on the committed tree, and introducing a
contract violation — the acceptance-criteria probe is ``time.time()``
inside ``repro/gpu`` — flips the exit code to 1.
"""

import json
import shutil
from pathlib import Path

from repro.cli import main
from repro.simlint import lint_paths, load_baseline, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_report(*trees):
    config = load_config(REPO_ROOT / "pyproject.toml")
    baseline = load_baseline(config.baseline_path)
    report = lint_paths([str(REPO_ROOT / t) for t in trees], config=config,
                        baseline=baseline)
    return report


def test_repro_lint_src_is_clean():
    report = repo_report("src")
    assert report.files > 50
    assert report.errors == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.errors
    ]
    assert report.exit_code == 0


def test_repro_lint_tests_is_clean():
    report = repo_report("tests")
    assert report.errors == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.errors
    ]
    assert report.exit_code == 0


def test_repro_lint_tools_is_clean():
    report = repo_report("tools")
    assert report.files >= 3
    assert report.errors == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.errors
    ]
    assert report.exit_code == 0


def test_store_holds_the_only_wallclock_suppressions_in_src():
    """The two sanctioned time.time() reads (result/failure metadata in
    repro.runtime.store) must stay the only SL101 suppressions in src/."""
    sanctioned = []
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        if "simlint" in path.parts:
            # The linter's own docs quote the directive as an example.
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "simlint: disable" in line and "SL101" in line:
                sanctioned.append((path.relative_to(REPO_ROOT).as_posix(),
                                   lineno))
    assert [entry[0] for entry in sanctioned] == [
        "src/repro/runtime/store.py",
        "src/repro/runtime/store.py",
    ], sanctioned


def test_committed_baseline_is_empty():
    """New code never rides in on the baseline — it exists for future
    grandfathering only, and today holds nothing."""
    payload = json.loads((REPO_ROOT / "simlint-baseline.json").read_text())
    assert payload == {"entries": [], "schema": 2}


def test_tool_suppressions_are_pinned():
    """tools/ carries exactly the documented suppressions: calibrate's
    operator-facing stdout/elapsed-time pair (file-level) and the api-doc
    generator's status line.  A new suppression must update this pin."""
    suppressions = []
    for path in sorted((REPO_ROOT / "tools").rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "simlint: disable" in line:
                suppressions.append(
                    (path.relative_to(REPO_ROOT).as_posix(),
                     line.split("=", 1)[1].strip())
                )
    assert suppressions == [
        ("tools/calibrate.py", "SL402"),
        ("tools/calibrate.py", "SL101"),
        ("tools/gen_api_docs.py", "SL402"),
    ], suppressions


def test_seeded_violation_turns_the_gate_red(tmp_path, capsys):
    """Copy a timing-critical module, seed a wall-clock read, lint it
    through the real CLI with the real config: exit code must be 1."""
    tree = tmp_path / "src" / "repro" / "gpu"
    tree.mkdir(parents=True)
    target = tree / "rt_unit.py"
    shutil.copyfile(REPO_ROOT / "src" / "repro" / "gpu" / "rt_unit.py",
                    target)
    source = target.read_text()
    needle = "warp, slot = resident[0]"
    assert needle in source
    target.write_text(source.replace(
        needle, "import time; _t0 = time.time()\n                " + needle, 1
    ))
    code = main([
        "lint", str(tmp_path / "src"),
        "--config", str(REPO_ROOT / "pyproject.toml"),
        "--no-baseline", "--format", "json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert any(
        f["rule"] == "SL101" and f["path"].endswith("rt_unit.py")
        for f in payload["findings"]
    )
