"""Seeded red-gates for the SL6xx vector family.

The targets are the *real* numpy backend files: ``soa.py`` (whose CSR
bounds guard exists because SL604 demanded it) and ``unit.py`` (whose
counter folds SL601 keeps integral).  Each test copies them into a
scratch tree, seeds one violation, and lints with the real config.
"""

import shutil
from pathlib import Path

from repro.simlint import lint_paths, load_config

REPO_ROOT = Path(__file__).resolve().parents[2]

#: unit.py's counter-parity oracle lives one package up; it must ride
#: along so SL204's coverage check has its target in the project graph.
SOURCES = ("src/repro/gpu/vector/unit.py",
           "src/repro/gpu/vector/soa.py",
           "src/repro/gpu/counters.py")


def seeded_report(tmp_path, filename, mutate):
    for rel in SOURCES:
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, dest)
    target = tmp_path / "src" / "repro" / "gpu" / "vector" / filename
    source = target.read_text()
    mutated = mutate(source)
    assert mutated != source, "seed did not apply"
    target.write_text(mutated)
    config = load_config(REPO_ROOT / "pyproject.toml")
    return lint_paths([str(tmp_path / "src")], config=config)


def rules_of(report):
    return sorted({f.rule for f in report.errors})


def test_unmodified_vector_backend_is_clean(tmp_path):
    report = seeded_report(
        tmp_path, "unit.py", lambda s: s + "\n# control copy\n"
    )
    assert report.errors == [], rules_of(report)
    assert report.exit_code == 0


def test_seeded_float_counter_fold_fires_sl601(tmp_path):
    report = seeded_report(tmp_path, "unit.py", lambda s: s.replace(
        'counters.instructions += totals["instructions"]',
        'counters.instructions += totals["instructions"] / 2',
        1,
    ))
    assert report.exit_code == 1
    assert rules_of(report) == ["SL601"]


def test_seeded_unsanctioned_cache_write_fires_sl602(tmp_path):
    seed = (
        "\n\ndef _poke(trace, totals):\n"
        "    cache = trace._vector_cache\n"
        "    cache[\"totals\"] = totals\n"
    )
    report = seeded_report(tmp_path, "unit.py", lambda s: s + seed)
    assert report.exit_code == 1
    assert rules_of(report) == ["SL602"]


def test_seeded_unstable_argsort_fires_sl603(tmp_path):
    # soa.py is the file that imports numpy as np.
    seed = (
        "\n\ndef _rank(keys):\n"
        "    return np.argsort(keys)\n"
    )
    report = seeded_report(tmp_path, "soa.py", lambda s: s + seed)
    assert report.exit_code == 1
    assert rules_of(report) == ["SL603"]


def test_removing_the_csr_guard_fires_sl604(tmp_path):
    def strip_guard(source):
        start = source.index("    if len(push_off) != soa.n_steps + 1:")
        end = source.index("    steps = [")
        return source[:start] + source[end:]

    report = seeded_report(tmp_path, "soa.py", strip_guard)
    assert report.exit_code == 1
    assert rules_of(report) == ["SL604"]
