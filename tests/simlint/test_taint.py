"""The determinism taint engine: sources, flows, and the fixpoint.

Exercises :func:`classify_source`, the per-function abstract
interpretation (:class:`TaintAnalyzer`), and the project-wide
propagation (:func:`propagate_taint`) — including the loop-carried
two-pass convergence and call-cycle termination SL110 relies on.
"""

import ast
import textwrap

from repro.simlint.engine import FileContext
from repro.simlint.project import ProjectGraph, expr_key, summarize_file
from repro.simlint.taint import (
    LABEL_CLOCK,
    LABEL_HASH,
    LABEL_ID,
    LABEL_OS_ENTROPY,
    LABEL_RNG,
    LABEL_SET_ORDER,
    TaintAnalyzer,
    classify_source,
    structural_taint,
)


def analyzer_for(source, module="repro.m", **hooks):
    source = textwrap.dedent(source)
    ctx = FileContext("src/repro/m.py", source, module=module)
    fn = next(
        stmt for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    local_defs = {
        stmt.name
        for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return TaintAnalyzer(
        fn, ctx.imports, module=module, local_defs=local_defs, **hooks
    )


def graph_of(**modules):
    summaries = []
    for module, source in modules.items():
        source = textwrap.dedent(source)
        path = "src/" + module.replace(".", "/") + ".py"
        ctx = FileContext(path, source, module=module)
        summaries.append(summarize_file(ctx.tree, path, module, ctx.imports,
                                        source))
    return ProjectGraph(summaries)


# ---------------------------------------------------------------------------
# source classification


def test_classify_source_labels():
    assert classify_source("time.time") == LABEL_CLOCK
    assert classify_source("time.perf_counter") == LABEL_CLOCK
    assert classify_source("datetime.datetime.now") == LABEL_CLOCK
    assert classify_source("random.random") == LABEL_RNG
    assert classify_source("numpy.random.rand") == LABEL_RNG
    assert classify_source("os.urandom") == LABEL_OS_ENTROPY
    assert classify_source("secrets.token_hex") == LABEL_OS_ENTROPY
    assert classify_source("id") == LABEL_ID
    assert classify_source("hash") == LABEL_HASH


def test_classify_source_leaves_seeded_and_pure_calls_clean():
    assert classify_source("random.Random") is None
    assert classify_source("numpy.random.default_rng") is None
    assert classify_source("math.floor") is None
    assert classify_source(None) is None


# ---------------------------------------------------------------------------
# single-function flows


def test_taint_flows_through_locals_and_derivations():
    stores = []
    analyzer = analyzer_for(
        """
        import time

        def f(counters):
            t = time.time()
            label = f"run-{t}"
            counters.box_tests = label
        """,
        on_store=lambda target, value, stmt: stores.append(
            (expr_key(target), frozenset(value.labels))
        ),
    )
    analyzer.run()
    assert ("counters.box_tests", frozenset({LABEL_CLOCK})) in stores


def test_loop_carried_taint_converges_on_the_second_pass():
    analyzer = analyzer_for(
        """
        import time

        def f():
            y = 0
            for _ in range(3):
                y = x
                x = time.time()
            return y
        """
    )
    analyzer.run()
    # `x` is textually bound after its use; the seeding pass makes the
    # emitting pass see the loop-carried value.
    assert LABEL_CLOCK in analyzer.return_taint.labels


def test_parameters_flow_to_returns_as_pass_through():
    analyzer = analyzer_for(
        """
        def f(scene, seed):
            return seed
        """
    )
    analyzer.run()
    assert analyzer.return_taint.params == {1}
    assert not analyzer.return_taint.labels


def test_materializing_a_set_carries_hash_order():
    analyzer = analyzer_for(
        """
        def f(values):
            return list({v for v in values})
        """
    )
    analyzer.run()
    assert LABEL_SET_ORDER in analyzer.return_taint.labels


def test_sorting_a_tainted_sequence_reports_an_ordering_event():
    events = []
    analyzer = analyzer_for(
        """
        import time

        def f(stamps):
            noisy = [time.time() for _ in stamps]
            return sorted(noisy)
        """,
        on_order=lambda node, taint: events.append(frozenset(taint.labels)),
    )
    analyzer.run()
    assert frozenset({LABEL_CLOCK}) in events


def test_lookup_pulls_taint_through_same_module_helpers():
    stores = []
    summaries = {"repro.m.stamp": {"labels": {LABEL_CLOCK}, "params": ()}}
    analyzer = analyzer_for(
        """
        def f(counters):
            counters.ticks = stamp()

        def stamp():
            return 0.0
        """,
        lookup=lambda dotted: summaries.get(dotted),
        on_store=lambda target, value, stmt: stores.append(
            (expr_key(target), frozenset(value.labels))
        ),
    )
    analyzer.run()
    assert ("counters.ticks", frozenset({LABEL_CLOCK})) in stores


def test_structural_taint_reports_call_edges():
    source = textwrap.dedent(
        """
        from repro.a import derive

        def f(seed):
            return derive(seed)
        """
    )
    ctx = FileContext("src/repro/m.py", source, module="repro.m")
    fn = ctx.tree.body[1]
    labels, params, calls = structural_taint(fn, ctx.imports, "repro.m", None)
    assert labels == set()
    assert calls == {("repro.a.derive", (0,))}


# ---------------------------------------------------------------------------
# project-wide fixpoint


def test_propagate_taint_reaches_fixpoint_over_call_cycles():
    graph = graph_of(**{
        "repro.a": """
            from repro.b import pong

            def ping(depth):
                return pong(depth)
        """,
        "repro.b": """
            import time
            from repro.a import ping

            def pong(depth):
                if depth:
                    return ping(depth - 1)
                return time.time()
        """,
    })
    taint = graph.taint()
    assert LABEL_CLOCK in taint["repro.b.pong"]["labels"]
    # The cycle closes: ping's return is pong's return is ping's...
    assert LABEL_CLOCK in taint["repro.a.ping"]["labels"]


def test_propagate_taint_closes_parameter_pass_through():
    graph = graph_of(**{
        "repro.a": """
            from repro.b import inner

            def outer(token):
                return inner(token)
        """,
        "repro.b": """
            def inner(value):
                return value
        """,
    })
    taint = graph.taint()
    assert taint["repro.b.inner"]["params"] == {0}
    assert taint["repro.a.outer"]["params"] == {0}


def test_propagate_taint_keeps_clean_functions_clean():
    graph = graph_of(**{
        "repro.a": """
            def pure(scene, seed):
                return (scene, seed)
        """,
    })
    taint = graph.taint()
    assert taint["repro.a.pure"]["labels"] == set()
