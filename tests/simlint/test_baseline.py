"""Baseline tests: multiset semantics, round-trip, schema guard."""

import json

import pytest

from repro.errors import ReproError
from repro.simlint import load_baseline, write_baseline
from repro.simlint.baseline import Baseline
from repro.simlint.model import Finding


def finding(line=3, text='print("x")'):
    return Finding(rule="SL402", severity="error", path="repro/a.py",
                   line=line, col=1, message="print() in library code",
                   text=text)


def test_apply_marks_matching_findings():
    baseline = Baseline([
        {"path": "repro/a.py", "rule": "SL402", "text": 'print("x")'},
    ])
    findings = [finding(line=3), finding(line=9, text="other()")]
    assert baseline.apply(findings) == 1
    assert findings[0].baselined and not findings[1].baselined


def test_apply_is_line_number_insensitive():
    """Entries key on the source text, so drift does not churn CI."""
    baseline = Baseline([
        {"path": "repro/a.py", "rule": "SL402", "text": 'print("x")'},
    ])
    moved = [finding(line=712)]
    assert baseline.apply(moved) == 1


def test_multiset_absolves_exactly_recorded_count():
    baseline = Baseline([
        {"path": "repro/a.py", "rule": "SL402", "text": 'print("x")'},
    ])
    dupes = [finding(line=3), finding(line=4)]  # same offending text twice
    assert baseline.apply(dupes) == 1
    assert [f.baselined for f in dupes] == [True, False]


def test_write_then_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [finding()])
    loaded = load_baseline(path)
    assert len(loaded) == 1
    findings = [finding(line=50)]
    assert loaded.apply(findings) == 1


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = load_baseline(tmp_path / "absent.json")
    assert len(baseline) == 0
    findings = [finding()]
    assert baseline.apply(findings) == 0
    assert not findings[0].baselined


def test_schema_mismatch_is_an_error_not_acceptance(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 99, "entries": []}))
    with pytest.raises(ReproError, match="schema"):
        load_baseline(path)


def test_unreadable_json_is_an_error(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(ReproError, match="unreadable"):
        load_baseline(path)


def test_entries_shape_is_validated(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 1, "entries": {"a": 1}}))
    with pytest.raises(ReproError, match="entries"):
        load_baseline(path)
