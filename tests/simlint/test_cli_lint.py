"""CLI tests for ``repro lint`` (driving main() directly)."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_dirty_tree(tmp_path):
    """A lintable tree with exactly one SL402 violation."""
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "mod.py").write_text('print("x")\n')
    return tmp_path


def lint(*argv):
    return main(["lint", *argv])


def test_list_rules_prints_catalog(capsys):
    assert lint("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ("SL101", "SL102", "SL103", "SL104", "SL201", "SL202",
                    "SL203", "SL204", "SL301", "SL302", "SL401", "SL402"):
        assert rule_id in out


def test_violation_exits_1_text(tmp_path, capsys):
    code = lint(str(make_dirty_tree(tmp_path)), "--no-baseline")
    assert code == 1
    out = capsys.readouterr().out
    assert "SL402 error:" in out and "1 error(s)" in out


def test_clean_tree_exits_0(tmp_path, capsys):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "mod.py").write_text("x = 1\n")
    assert lint(str(tmp_path), "--no-baseline") == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_json_format_and_out_file(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = lint(str(make_dirty_tree(tmp_path)), "--no-baseline",
                "--format", "json", "--out", str(out_path))
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(out_path.read_text())
    assert stdout_payload == file_payload
    assert file_payload["exit_code"] == 1
    assert file_payload["findings"][0]["rule"] == "SL402"


def test_write_baseline_then_clean(tmp_path, capsys):
    tree = make_dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint(str(tree), "--baseline", str(baseline),
                "--write-baseline") == 0
    assert "baselined 1 finding(s)" in capsys.readouterr().out
    # The grandfathered finding no longer gates...
    assert lint(str(tree), "--baseline", str(baseline)) == 0
    capsys.readouterr()
    # ...but a fresh violation alongside it still does.
    (tree / "repro" / "new.py").write_text('print("y")\n')
    assert lint(str(tree), "--baseline", str(baseline)) == 1
    out = capsys.readouterr().out
    assert "new.py" in out and "mod.py" not in out


def test_show_baselined_flag(tmp_path, capsys):
    tree = make_dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    lint(str(tree), "--baseline", str(baseline), "--write-baseline")
    capsys.readouterr()
    assert lint(str(tree), "--baseline", str(baseline),
                "--show-baselined") == 0
    assert "[baselined]" in capsys.readouterr().out


def test_broken_file_exits_2(tmp_path, capsys):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "broken.py").write_text("def oops(:\n")
    assert lint(str(tmp_path), "--no-baseline") == 2
    assert "cannot parse" in capsys.readouterr().out


def test_missing_target_exits_2(capsys):
    assert lint("no/such/tree", "--no-baseline") == 2
    assert "does not exist" in capsys.readouterr().err


def test_list_rules_includes_the_v2_families(capsys):
    assert lint("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ("SL110", "SL501", "SL502", "SL503", "SL504",
                    "SL601", "SL602", "SL603", "SL604"):
        assert rule_id in out


def test_sarif_format(tmp_path, capsys):
    code = lint(str(make_dirty_tree(tmp_path)), "--no-baseline",
                "--format", "sarif")
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.simlint"
    assert [r["ruleId"] for r in run["results"]] == ["SL402"]


def test_cache_flag_makes_the_second_run_parse_nothing(tmp_path, capsys):
    tree = make_dirty_tree(tmp_path)
    cache = tmp_path / "lint-cache.json"
    assert lint(str(tree), "--no-baseline", "--cache", str(cache)) == 1
    capsys.readouterr()
    assert lint(str(tree), "--no-baseline", "--cache", str(cache)) == 1
    out = capsys.readouterr().out
    assert "0 parsed" in out and "cache hits" in out


def test_changed_falls_back_to_full_scan_outside_git(
    tmp_path, capsys, monkeypatch
):
    make_dirty_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint("repro", "--no-baseline", "--changed") == 1
    captured = capsys.readouterr()
    assert "not a git checkout" in captured.err
    assert "1 error(s)" in captured.out


def test_changed_scopes_the_run_to_dirty_files(
    tmp_path, capsys, monkeypatch
):
    import subprocess

    tree = make_dirty_tree(tmp_path)
    (tmp_path / "repro" / "clean.py").write_text("x = 1\n")
    subprocess.run(("git", "init", "--quiet"), cwd=tmp_path, check=True)
    subprocess.run(("git", "add", "-A"), cwd=tmp_path, check=True)
    subprocess.run(
        ("git", "-c", "user.email=ci@example.invalid", "-c", "user.name=ci",
         "commit", "--quiet", "-m", "seed"),
        cwd=tmp_path, check=True,
    )
    (tmp_path / "repro" / "mod.py").write_text('print("still dirty")\n')
    monkeypatch.chdir(tmp_path)
    assert lint("repro", "--no-baseline", "--changed") == 1
    out = capsys.readouterr().out
    assert "1 file(s)" in out and "1 error(s)" in out


def test_config_flag_applies_repo_config(tmp_path, capsys):
    """--config pointing at the repo pyproject excludes rule fixtures."""
    tree = tmp_path / "repro" / "tests" / "simlint" / "fixtures"
    tree.mkdir(parents=True)
    (tree / "sl_bad.py").write_text('print("x")\n')
    config = str(REPO_ROOT / "pyproject.toml")
    assert lint(str(tmp_path), "--config", config, "--no-baseline") == 0
    assert "0 file(s)" in capsys.readouterr().out
