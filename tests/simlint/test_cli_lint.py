"""CLI tests for ``repro lint`` (driving main() directly)."""

import json
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_dirty_tree(tmp_path):
    """A lintable tree with exactly one SL402 violation."""
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "mod.py").write_text('print("x")\n')
    return tmp_path


def lint(*argv):
    return main(["lint", *argv])


def test_list_rules_prints_catalog(capsys):
    assert lint("--list-rules") == 0
    out = capsys.readouterr().out
    for rule_id in ("SL101", "SL102", "SL103", "SL104", "SL201", "SL202",
                    "SL203", "SL204", "SL301", "SL302", "SL401", "SL402"):
        assert rule_id in out


def test_violation_exits_1_text(tmp_path, capsys):
    code = lint(str(make_dirty_tree(tmp_path)), "--no-baseline")
    assert code == 1
    out = capsys.readouterr().out
    assert "SL402 error:" in out and "1 error(s)" in out


def test_clean_tree_exits_0(tmp_path, capsys):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "mod.py").write_text("x = 1\n")
    assert lint(str(tmp_path), "--no-baseline") == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_json_format_and_out_file(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    code = lint(str(make_dirty_tree(tmp_path)), "--no-baseline",
                "--format", "json", "--out", str(out_path))
    assert code == 1
    stdout_payload = json.loads(capsys.readouterr().out)
    file_payload = json.loads(out_path.read_text())
    assert stdout_payload == file_payload
    assert file_payload["exit_code"] == 1
    assert file_payload["findings"][0]["rule"] == "SL402"


def test_write_baseline_then_clean(tmp_path, capsys):
    tree = make_dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert lint(str(tree), "--baseline", str(baseline),
                "--write-baseline") == 0
    assert "baselined 1 finding(s)" in capsys.readouterr().out
    # The grandfathered finding no longer gates...
    assert lint(str(tree), "--baseline", str(baseline)) == 0
    capsys.readouterr()
    # ...but a fresh violation alongside it still does.
    (tree / "repro" / "new.py").write_text('print("y")\n')
    assert lint(str(tree), "--baseline", str(baseline)) == 1
    out = capsys.readouterr().out
    assert "new.py" in out and "mod.py" not in out


def test_show_baselined_flag(tmp_path, capsys):
    tree = make_dirty_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    lint(str(tree), "--baseline", str(baseline), "--write-baseline")
    capsys.readouterr()
    assert lint(str(tree), "--baseline", str(baseline),
                "--show-baselined") == 0
    assert "[baselined]" in capsys.readouterr().out


def test_broken_file_exits_2(tmp_path, capsys):
    tree = tmp_path / "repro"
    tree.mkdir()
    (tree / "broken.py").write_text("def oops(:\n")
    assert lint(str(tmp_path), "--no-baseline") == 2
    assert "cannot parse" in capsys.readouterr().out


def test_missing_target_exits_2(capsys):
    assert lint("no/such/tree", "--no-baseline") == 2
    assert "does not exist" in capsys.readouterr().err


def test_config_flag_applies_repo_config(tmp_path, capsys):
    """--config pointing at the repo pyproject excludes rule fixtures."""
    tree = tmp_path / "repro" / "tests" / "simlint" / "fixtures"
    tree.mkdir(parents=True)
    (tree / "sl_bad.py").write_text('print("x")\n')
    config = str(REPO_ROOT / "pyproject.toml")
    assert lint(str(tmp_path), "--config", config, "--no-baseline") == 0
    assert "0 file(s)" in capsys.readouterr().out
