"""Git-scoped selection for ``repro lint --changed``.

A scratch git repository is built per test; the selection must return
exactly the tracked-modified plus untracked Python files under the
requested targets, apply the config excludes, drop deletions, and
degrade to ``None`` (full-scan fallback) outside a checkout.
"""

import subprocess

from repro.simlint.changed import changed_python_files
from repro.simlint.config import LintConfig


def git(repo, *args):
    subprocess.run(
        ("git", "-C", str(repo),
         "-c", "user.email=ci@example.invalid", "-c", "user.name=ci")
        + args,
        check=True, capture_output=True,
    )


def make_repo(root):
    pkg = root / "src" / "repro"
    (pkg / "fixtures").mkdir(parents=True)
    (pkg / "a.py").write_text("A = 1\n")
    (pkg / "b.py").write_text("B = 2\n")
    (pkg / "fixtures" / "f.py").write_text("F = 3\n")
    (root / "notes.txt").write_text("not python\n")
    git(root, "init", "--quiet")
    git(root, "add", "-A")
    git(root, "commit", "--quiet", "-m", "seed")
    return root


def test_changed_selects_modified_and_untracked_python(tmp_path, monkeypatch):
    repo = make_repo(tmp_path)
    (repo / "src" / "repro" / "a.py").write_text("A = 10\n")
    (repo / "src" / "repro" / "c.py").write_text("C = 3\n")  # untracked
    (repo / "notes.txt").write_text("still not python\n")
    monkeypatch.chdir(repo)
    selected = changed_python_files(["src"], LintConfig())
    assert selected == ["src/repro/a.py", "src/repro/c.py"]


def test_changed_applies_config_excludes(tmp_path, monkeypatch):
    repo = make_repo(tmp_path)
    (repo / "src" / "repro" / "fixtures" / "f.py").write_text("F = 30\n")
    (repo / "src" / "repro" / "a.py").write_text("A = 10\n")
    monkeypatch.chdir(repo)
    selected = changed_python_files(
        ["src"], LintConfig(exclude=("fixtures",))
    )
    assert selected == ["src/repro/a.py"]


def test_changed_drops_deleted_files(tmp_path, monkeypatch):
    repo = make_repo(tmp_path)
    (repo / "src" / "repro" / "b.py").unlink()
    monkeypatch.chdir(repo)
    assert changed_python_files(["src"], LintConfig()) == []


def test_changed_scopes_to_the_requested_targets(tmp_path, monkeypatch):
    repo = make_repo(tmp_path)
    (repo / "toplevel.py").write_text("T = 1\n")  # untracked, outside src/
    (repo / "src" / "repro" / "a.py").write_text("A = 10\n")
    monkeypatch.chdir(repo)
    assert changed_python_files(["src"], LintConfig()) == ["src/repro/a.py"]


def test_changed_is_none_outside_a_git_checkout(tmp_path, monkeypatch):
    plain = tmp_path / "plain"
    (plain / "src").mkdir(parents=True)
    monkeypatch.chdir(plain)
    assert changed_python_files(["src"], LintConfig()) is None
