"""Config tests: pyproject loading and the tomllib-free subset parser."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.simlint import load_config
from repro.simlint.config import LintConfig, _parse_toml_subset

REPO_ROOT = Path(__file__).resolve().parents[2]

SAMPLE = """
[project]
name = "other"

[tool.simlint]
baseline = "lint-base.json"
exclude = ["fixtures", "build"]
timing-critical = [
    "repro.gpu",
    "repro.stack",
]
disable = ["SL104"]

[tool.simlint.severity]
SL402 = "warning"

[tool.other]
noise = "ignored"
"""


def test_missing_pyproject_yields_defaults(tmp_path):
    config = load_config(tmp_path / "pyproject.toml")
    assert config == LintConfig()
    assert "repro.gpu" in config.timing_critical


def test_load_config_from_sample(tmp_path):
    path = tmp_path / "pyproject.toml"
    path.write_text(SAMPLE)
    config = load_config(path)
    assert config.baseline_path == tmp_path / "lint-base.json"
    assert config.exclude == ("fixtures", "build")
    assert config.timing_critical == ("repro.gpu", "repro.stack")
    assert config.disabled == ("SL104",)
    assert config.severity == {"SL402": "warning"}


def test_repo_pyproject_parses():
    config = load_config(REPO_ROOT / "pyproject.toml")
    assert config.baseline_path == REPO_ROOT / "simlint-baseline.json"
    assert any("fixtures" in pattern for pattern in config.exclude)
    assert "repro.trace" in config.timing_critical
    assert "repro.cli" in config.print_allowed


def test_invalid_severity_value_rejected(tmp_path):
    path = tmp_path / "pyproject.toml"
    path.write_text('[tool.simlint.severity]\nSL101 = "fatal"\n')
    with pytest.raises(ReproError, match="severity"):
        load_config(path)


def test_non_string_list_rejected(tmp_path):
    path = tmp_path / "pyproject.toml"
    path.write_text("[tool.simlint]\nexclude = 3\n")
    with pytest.raises(ReproError, match="exclude"):
        load_config(path)


# -- the < 3.11 fallback parser, exercised directly on every version ------

def test_subset_parser_matches_expected_shape():
    table = _parse_toml_subset(SAMPLE, "tool.simlint")
    assert table["baseline"] == "lint-base.json"
    assert table["exclude"] == ["fixtures", "build"]
    assert table["timing-critical"] == ["repro.gpu", "repro.stack"]
    assert table["disable"] == ["SL104"]
    assert table["severity"] == {"SL402": "warning"}
    assert "noise" not in table


def test_subset_parser_ignores_other_sections():
    assert _parse_toml_subset("[tool.black]\nline = \"88\"\n", "tool.simlint") == {}


def test_subset_parser_multiline_list():
    text = '[tool.simlint]\nsingletons = [\n  "A",\n  "B",\n]\n'
    assert _parse_toml_subset(text, "tool.simlint")["singletons"] == ["A", "B"]


def test_severity_for_prefers_override():
    class FakeRule:
        id = "SL402"
        severity = "error"

    config = LintConfig(severity={"SL402": "warning"})
    assert config.severity_for(FakeRule) == "warning"
    assert LintConfig().severity_for(FakeRule) == "error"
