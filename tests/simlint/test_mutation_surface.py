"""SL204 mutation-surface parity: the cross-module call-graph check.

The fixture pair covers the headline cases; these tests pin the edge
behavior — no fast-forward branch at all, writes reached through
helper-method calls, tuple-unpacking targets — and the meta-case that
the real ``RTUnit.run`` passes the check today.
"""

from pathlib import Path

from repro.simlint import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
RT_UNIT = REPO_ROOT / "src" / "repro" / "gpu" / "rt_unit.py"


def sl204(source):
    findings = lint_source(source, module="repro.gpu.unit")
    return [f for f in findings if f.rule == "SL204"]


def test_no_fast_forward_branch_no_findings():
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        total = 0\n"
        "        for step in range(4):\n"
        "            total += step\n"
        "        return total\n"
    )
    assert sl204(source) == []


def test_write_through_helper_method_is_tracked():
    """A drain-only write hidden inside a helper is still caught."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self._drain()\n"
        "                pending.clear()\n"
        "                continue\n"
        "            pending.pop()\n"
        "    def _drain(self):\n"
        "        self.counters.drained += 1\n"
    )
    (finding,) = sl204(source)
    assert "self.counters.drained" in finding.message


def test_shared_helper_write_is_parity():
    """Both schedules reaching the same write through a helper is fine."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self._step()\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self._step()\n"
        "            pending.pop()\n"
        "    def _step(self):\n"
        "        self.counters.steps += 1\n"
    )
    assert sl204(source) == []


def test_tuple_unpacking_targets_all_count():
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self.a, self.b = 1, 2\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self.a = 1\n"
        "            pending.pop()\n"
    )
    (finding,) = sl204(source)
    assert "self.b" in finding.message and "self.a" not in finding.message


def test_branch_private_scratch_local_allowed():
    """A local bound and consumed inside the drain is not shared state."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                scratch = pending[0]\n"
        "                self.total = scratch\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self.total = pending.pop()\n"
    )
    assert sl204(source) == []


def test_real_rt_unit_fast_forward_is_parity_clean():
    source = RT_UNIT.read_text()
    findings = lint_source(source, path=str(RT_UNIT),
                           module="repro.gpu.rt_unit")
    assert [f for f in findings if f.rule == "SL204"] == []


def test_seeded_drain_only_write_in_rt_unit_is_caught():
    """The acceptance-criteria probe: perturb the real fast-forward
    drain with a write the stepped loop lacks and SL204 must fire."""
    source = RT_UNIT.read_text()
    # Anchor on the first statement of the drain branch and seed the
    # probe write right next to it, at the same indentation.
    needle = "warp, slot = resident[0]"
    assert needle in source
    lines = source.splitlines()
    anchor = next(i for i, line in enumerate(lines) if needle in line)
    indent = len(lines[anchor]) - len(lines[anchor].lstrip())
    lines.insert(anchor + 1, " " * indent + "self.counters.ff_probe = 1")
    seeded = "\n".join(lines) + "\n"
    findings = lint_source(seeded, module="repro.gpu.rt_unit")
    assert any(
        f.rule == "SL204" and "ff_probe" in f.message for f in findings
    ), [f"{f.rule}:{f.message}" for f in findings]
