"""SL204 mutation-surface parity: the cross-module call-graph check.

The fixture pair covers the headline cases; these tests pin the edge
behavior — no fast-forward branch at all, writes reached through
helper-method calls, tuple-unpacking targets — and the meta-cases that
the real ``RTUnit.run`` passes the fast-forward check and the real
``VectorRTUnit.run`` passes the counter-parity-oracle check today,
plus the seeded red gates proving both checks still fire.
"""

from pathlib import Path

from repro.simlint import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]
RT_UNIT = REPO_ROOT / "src" / "repro" / "gpu" / "rt_unit.py"
VECTOR_UNIT = REPO_ROOT / "src" / "repro" / "gpu" / "vector" / "unit.py"


def sl204(source):
    findings = lint_source(source, module="repro.gpu.unit")
    return [f for f in findings if f.rule == "SL204"]


def test_no_fast_forward_branch_no_findings():
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        total = 0\n"
        "        for step in range(4):\n"
        "            total += step\n"
        "        return total\n"
    )
    assert sl204(source) == []


def test_write_through_helper_method_is_tracked():
    """A drain-only write hidden inside a helper is still caught."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self._drain()\n"
        "                pending.clear()\n"
        "                continue\n"
        "            pending.pop()\n"
        "    def _drain(self):\n"
        "        self.counters.drained += 1\n"
    )
    (finding,) = sl204(source)
    assert "self.counters.drained" in finding.message


def test_shared_helper_write_is_parity():
    """Both schedules reaching the same write through a helper is fine."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self._step()\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self._step()\n"
        "            pending.pop()\n"
        "    def _step(self):\n"
        "        self.counters.steps += 1\n"
    )
    assert sl204(source) == []


def test_tuple_unpacking_targets_all_count():
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                self.a, self.b = 1, 2\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self.a = 1\n"
        "            pending.pop()\n"
    )
    (finding,) = sl204(source)
    assert "self.b" in finding.message and "self.a" not in finding.message


def test_branch_private_scratch_local_allowed():
    """A local bound and consumed inside the drain is not shared state."""
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pending = [1]\n"
        "        while pending:\n"
        "            if self.fast_forward:\n"
        "                scratch = pending[0]\n"
        "                self.total = scratch\n"
        "                pending.clear()\n"
        "                continue\n"
        "            self.total = pending.pop()\n"
    )
    assert sl204(source) == []


def test_real_rt_unit_fast_forward_is_parity_clean():
    source = RT_UNIT.read_text()
    findings = lint_source(source, path=str(RT_UNIT),
                           module="repro.gpu.rt_unit")
    assert [f for f in findings if f.rule == "SL204"] == []


def test_seeded_drain_only_write_in_rt_unit_is_caught():
    """The acceptance-criteria probe: perturb the real fast-forward
    drain with a write the stepped loop lacks and SL204 must fire."""
    source = RT_UNIT.read_text()
    # Anchor on the first statement of the drain branch and seed the
    # probe write right next to it, at the same indentation.
    needle = "warp, slot = resident[0]"
    assert needle in source
    lines = source.splitlines()
    anchor = next(i for i, line in enumerate(lines) if needle in line)
    indent = len(lines[anchor]) - len(lines[anchor].lstrip())
    lines.insert(anchor + 1, " " * indent + "self.counters.ff_probe = 1")
    seeded = "\n".join(lines) + "\n"
    findings = lint_source(seeded, module="repro.gpu.rt_unit")
    assert any(
        f.rule == "SL204" and "ff_probe" in f.message for f in findings
    ), [f"{f.rule}:{f.message}" for f in findings]


# -- counter-parity oracle (the vector backend obligation) --------------


def sl204_oracle(source, path, module="repro.gpu.vector.unit"):
    findings = lint_source(source, path=str(path), module=module)
    return [f for f in findings if f.rule == "SL204"]


def test_real_vector_unit_satisfies_counter_oracle():
    """VectorRTUnit.run reaches a write of every non-exempt counter."""
    assert sl204_oracle(VECTOR_UNIT.read_text(), VECTOR_UNIT) == []


def test_seeded_dropped_counter_write_is_caught():
    """The red gate: delete one counter fold from the real vector unit
    and SL204 must name the now-unwritten field."""
    source = VECTOR_UNIT.read_text()
    needle = "counters.l1_misses += l1_misses"
    assert needle in source
    seeded = source.replace(needle, "pass")
    findings = sl204_oracle(seeded, VECTOR_UNIT)
    assert any("`l1_misses`" in f.message for f in findings), [
        f.message for f in findings
    ]
    # Every other counter write is intact, so exactly one field fires.
    assert len(findings) == 1


def test_exempt_counter_is_not_required(tmp_path):
    oracle = tmp_path / "counters.py"
    oracle.write_text(
        "class Counters:\n"
        "    cycles: int = 0\n"
        "    steps: int = 0\n"
    )
    unit = tmp_path / "unit.py"
    source = (
        "class Unit:\n"
        "    COUNTER_PARITY_ORACLE = 'counters.py'\n"
        "    COUNTER_PARITY_EXEMPT = ('cycles',)\n"
        "    def run(self):\n"
        "        self.counters.steps += 1\n"
    )
    assert sl204_oracle(source, unit) == []


def test_missing_counter_write_fires_per_field(tmp_path):
    oracle = tmp_path / "counters.py"
    oracle.write_text(
        "class Counters:\n"
        "    steps: int = 0\n"
        "    stalls: int = 0\n"
    )
    unit = tmp_path / "unit.py"
    source = (
        "class Unit:\n"
        "    COUNTER_PARITY_ORACLE = 'counters.py'\n"
        "    def run(self):\n"
        "        self._tick()\n"
        "    def _tick(self):\n"
        "        counters = self.counters\n"
        "        counters.steps += 1\n"
    )
    (finding,) = sl204_oracle(source, unit)
    assert "`stalls`" in finding.message
    # The alias write through the helper covered `steps`.
    assert "`steps`" not in finding.message


def test_unresolvable_oracle_path_is_a_finding(tmp_path):
    unit = tmp_path / "unit.py"
    source = (
        "class Unit:\n"
        "    COUNTER_PARITY_ORACLE = 'no_such_file.py'\n"
        "    def run(self):\n"
        "        pass\n"
    )
    (finding,) = sl204_oracle(source, unit)
    assert "could not be read" in finding.message


def test_class_without_oracle_declaration_is_untouched(tmp_path):
    unit = tmp_path / "unit.py"
    source = (
        "class Unit:\n"
        "    def run(self):\n"
        "        pass\n"
    )
    assert sl204_oracle(source, unit) == []
