"""Per-rule fixture harness.

Every registered rule has a ``slXXX_bad.py`` / ``slXXX_good.py`` pair in
``fixtures/``; the bad file must trip exactly that rule (a fixture that
co-fires another rule is a bad diagnostic), the good file must be fully
clean.  Fixtures are linted as *text* via :func:`lint_source` with an
explicit module mount so scope filters apply without real src paths —
they are never imported, and the fixtures directory is excluded from
``repro lint`` runs by ``[tool.simlint]``.
"""

from pathlib import Path

import pytest

from repro.simlint import RULES, all_rules, lint_source
from repro.simlint.config import LintConfig

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id → (module the fixture is mounted as, finding count in *_bad).
#: SL203 mounts outside ``counter-owners`` (repro.gpu owns counters);
#: everything else mounts in the timing-critical gpu package, the
#: strictest scope, so timing/repro/all-scoped rules all engage.
CASES = {
    "SL101": ("repro.gpu.fixture", 3),
    "SL102": ("repro.gpu.fixture", 3),
    "SL103": ("repro.gpu.fixture", 3),
    "SL104": ("repro.gpu.fixture", 3),
    # SL110 mounts outside the timing packages so its entropy sources
    # (time/id/set-order) exercise the *flow* engine without co-firing
    # the SL1xx call-site rules.
    "SL110": ("repro.runtime.fixture", 3),
    "SL201": ("repro.gpu.fixture", 3),
    "SL202": ("repro.gpu.fixture", 2),
    "SL203": ("repro.runtime.fixture", 2),
    "SL204": ("repro.gpu.fixture", 2),
    "SL301": ("repro.gpu.fixture", 2),
    "SL302": ("repro.gpu.fixture", 2),
    "SL401": ("repro.gpu.fixture", 2),
    "SL402": ("repro.gpu.fixture", 1),
    "SL501": ("repro.service.fixture", 3),
    "SL502": ("repro.service.fixture", 2),
    "SL503": ("repro.service.fixture", 2),
    "SL504": ("repro.service.fixture", 2),
    "SL601": ("repro.gpu.vector.fixture", 2),
    "SL602": ("repro.gpu.vector.fixture", 2),
    "SL603": ("repro.gpu.vector.fixture", 2),
    "SL604": ("repro.gpu.vector.fixture", 2),
}


def lint_fixture(name: str, module: str):
    source = (FIXTURES / name).read_text()
    return lint_source(source, path=f"fixtures/{name}", module=module,
                       config=LintConfig())


def test_every_rule_has_a_fixture_pair():
    """The harness covers the registry — a new rule must bring fixtures."""
    assert set(CASES) == set(RULES)
    for rule_id in CASES:
        stem = rule_id.lower()
        assert (FIXTURES / f"{stem}_bad.py").exists()
        assert (FIXTURES / f"{stem}_good.py").exists()


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    module, expected = CASES[rule_id]
    findings = lint_fixture(f"{rule_id.lower()}_bad.py", module)
    fired = [f for f in findings if f.rule == rule_id]
    assert len(fired) == expected, [f"{f.rule}:{f.line}" for f in findings]
    # A fixture that co-fires other rules is diagnosing the wrong thing.
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_silent_on_good_fixture(rule_id):
    module, _ = CASES[rule_id]
    findings = lint_fixture(f"{rule_id.lower()}_good.py", module)
    assert findings == [], [f"{f.rule}:{f.line}:{f.message}" for f in findings]


def test_rule_catalog_is_documented():
    """Every rule carries the metadata the catalog and reporters rely on."""
    rules = all_rules()
    assert len(rules) >= 10
    for rule in rules:
        assert rule.id.startswith("SL") and rule.id[2:].isdigit()
        assert rule.title and rule.rationale
        assert rule.category in {
            "determinism", "bit-identity", "diagnostics", "hygiene",
            "concurrency", "vector",
        }
        assert rule.severity in {"error", "warning"}
        assert rule.scope in {"timing", "async", "vector", "repro", "all"}


def test_scope_filtering():
    """Timing rules skip non-timing modules; repro rules skip tests."""
    timing_only = "import time\ntime.sleep(0.1)\n"
    assert any(
        f.rule == "SL101"
        for f in lint_source(timing_only, module="repro.gpu.x")
    )
    # sleep is a host-clock call: flagged only under the simulated clock.
    assert lint_source(timing_only, module="repro.runtime.x") == []
    # print() is a repro-wide rule but fine outside the package.
    assert any(
        f.rule == "SL402" for f in lint_source("print(1)\n", module="repro.viz")
    )
    assert lint_source("print(1)\n", module=None) == []
