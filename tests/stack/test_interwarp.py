"""Inter-warp reallocation tests (the paper's rejected design)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StackError
from repro.stack.interwarp import InterWarpSmsStack, SlotView
from repro.stack.reference import ReferenceStack


def make(slots=2, lanes=4, rb=1, sh=1, **kwargs):
    return InterWarpSmsStack(
        rb_entries=rb, sh_entries=sh, slots=slots, lanes_per_warp=lanes,
        **kwargs,
    )


def test_lane_space_spans_slots():
    stack = make(slots=3, lanes=4)
    assert stack.warp_size == 12


def test_invalid_slots():
    with pytest.raises(StackError):
        make(slots=0)


def test_cross_slot_borrowing():
    stack = make()
    # Slot 1's lane 0 (global lane 4) finishes; slot 0's lane 0 borrows.
    stack.finish(4)
    for value in range(3):  # RB(1) + own SH(1) + 1 more
        stack.push(0, value)
    assert stack.borrow_count == 1
    assert stack.chain_length(0) == 2
    assert stack.global_occupancy(0) == 0
    stack.check_invariants()


def test_lifo_across_slot_borrowing():
    stack = make()
    stack.finish(4)
    stack.finish(5)
    values = list(range(8))
    for value in values:
        stack.push(0, value)
    assert [stack.pop(0)[0] for _ in values] == values[::-1]


def test_reset_slot_leaves_borrowed_region_with_borrower():
    """The paper's complexity case: a new warp finds its region on loan."""
    stack = make()
    stack.finish(4)
    for value in range(3):
        stack.push(0, value)  # lane 0 borrows lane 4's region
    stack.reset_slot(1)       # new warp enters slot 1
    assert stack.regionless_lanes(1) == [4]
    stack.check_invariants()
    # Lane 0's borrowed data is intact.
    assert [stack.pop(0)[0] for _ in range(3)] == [2, 1, 0]


def test_regionless_lane_spills_globally_then_reclaims():
    stack = make()
    stack.finish(4)
    for value in range(3):
        stack.push(0, value)     # borrows lane 4's region (holds value 0)
    stack.reset_slot(1)          # lane 4 regionless
    for value in range(3):
        stack.push(4, 100 + value)
    # Lane 4 had no SH region: one entry went to global memory.
    assert stack.global_occupancy(4) + stack.sh_occupancy(4) >= 1
    assert [stack.pop(4)[0] for _ in range(3)] == [102, 101, 100]
    stack.check_invariants()


def test_release_returns_region_to_active_owner_not_pool():
    stack = make()
    stack.finish(4)
    for value in range(3):
        stack.push(0, value)
    stack.reset_slot(1)          # lane 4 active, region on loan to lane 0
    while stack.sh_occupancy(0):
        stack.pop(0)             # drains; borrowed region released
    # Released region must NOT be idle (owner is active, not finished).
    assert not stack._idle[4]
    # Lane 4 reclaims it on its next overflow.
    stack.push(4, 1)
    stack.push(4, 2)
    assert stack.chain_length(4) == 1
    assert stack.sh_occupancy(4) == 1
    stack.check_invariants()


def test_slot_view_adapts_lanes():
    stack = make()
    view0 = SlotView(stack, 0)
    view1 = SlotView(stack, 1)
    view0.push(2, 11)
    view1.push(2, 22)
    assert stack.depth(2) == 1
    assert stack.depth(6) == 1
    assert view0.pop(2)[0] == 11
    assert view1.pop(2)[0] == 22


def test_slot_view_reset_is_partial():
    stack = make()
    view0 = SlotView(stack, 0)
    stack.push(4, 99)  # slot 1 lane 0
    view0.reset()
    assert stack.depth(4) == 1  # slot 1 untouched


def test_shared_addresses_stay_in_slot_blocks():
    stack = make(slots=2, lanes=32, rb=1, sh=8)
    block = stack._layouts[0].total_bytes
    for value in range(6):
        stack.push(0, value)         # slot 0 lane
        stack.push(40, value)        # slot 1 lane 8
    activity0 = stack.push(0, 100)
    activity1 = stack.push(40, 100)
    shared0 = [op for op in activity0.ops if op.space.value == "shared"]
    shared1 = [op for op in activity1.ops if op.space.value == "shared"]
    assert all(op.address < block for op in shared0)
    assert all(block <= op.address < 2 * block for op in shared1)


def test_spill_addresses_distinct_per_slot():
    stack = make(slots=2, lanes=32)
    assert stack._spill_address(0, 0) != stack._spill_address(32, 0)


operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # push/pop/finish/reset_slot
        st.integers(min_value=0, max_value=7),  # global lane (2 slots x 4)
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=150,
)


@settings(max_examples=150, deadline=None)
@given(operations)
def test_interwarp_equivalence_under_slot_resets(ops):
    """LIFO equivalence with warp replacement mixed in."""
    model = make(slots=2, lanes=4, rb=1, sh=1, max_borrows=3)
    reference = ReferenceStack(warp_size=8)
    finished = set()
    for i, (kind, lane, value) in enumerate(ops):
        if kind == 0 and lane not in finished:
            model.push(lane, value)
            reference.push(lane, value)
        elif kind == 1 and lane not in finished:
            if reference.depth(lane):
                expected, _ = reference.pop(lane)
                actual, _ = model.pop(lane)
                assert actual == expected
        elif kind == 2:
            model.finish(lane)
            reference.finish(lane)
            finished.add(lane)
        elif kind == 3:
            slot = lane % 2
            model.reset_slot(slot)
            for local in range(4):
                global_lane = slot * 4 + local
                reference.finish(global_lane)
                reference._stacks[global_lane] = []
                finished.discard(global_lane)
        if i % 9 == 0:
            model.check_invariants()
    model.check_invariants()
    for lane in range(8):
        assert model.contents(lane) == reference.contents(lane)
