"""Baseline short-stack tests (paper Fig. 3 semantics)."""

import pytest

from repro.errors import StackError
from repro.stack.baseline import BaselineStack
from repro.stack.ops import MemSpace, OpKind


def test_push_within_capacity_no_traffic():
    stack = BaselineStack(rb_entries=4)
    for value in range(4):
        activity = stack.push(0, value)
        assert activity.ops == []
    assert stack.depth(0) == 4


def test_overflow_spills_oldest():
    stack = BaselineStack(rb_entries=4)
    for value in range(5):
        activity = stack.push(0, value)
    assert len(activity.ops) == 1
    op = activity.ops[0]
    assert op.space is MemSpace.GLOBAL
    assert op.kind is OpKind.STORE
    assert stack.contents(0) == [0, 1, 2, 3, 4]


def test_figure3_walkthrough():
    """The paper's BVH6 example: 4-entry stack, push A..E, pop E, reload A."""
    stack = BaselineStack(rb_entries=4)
    for value in ["A", "B", "C", "D"]:
        assert stack.push(0, value).ops == []
    spill = stack.push(0, "E")  # A spills to off-chip
    assert [op.kind for op in spill.ops] == [OpKind.STORE]
    value, reload = stack.pop(0)  # pop E, reload A
    assert value == "E"
    assert [op.kind for op in reload.ops] == [OpKind.LOAD]
    assert stack.contents(0) == ["A", "B", "C", "D"]


def test_pop_order_lifo_across_spills():
    stack = BaselineStack(rb_entries=2)
    for value in range(7):
        stack.push(0, value)
    popped = [stack.pop(0)[0] for _ in range(7)]
    assert popped == [6, 5, 4, 3, 2, 1, 0]


def test_pop_empty_raises():
    stack = BaselineStack(rb_entries=2)
    with pytest.raises(StackError):
        stack.pop(0)


def test_eager_reload_keeps_rb_full():
    stack = BaselineStack(rb_entries=3)
    for value in range(6):
        stack.push(0, value)
    stack.pop(0)
    # After the pop, one spilled value must have been reloaded.
    assert len(stack._rb[0]) == 3
    assert len(stack._spilled[0]) == 2


def test_lanes_independent():
    stack = BaselineStack(rb_entries=2)
    stack.push(0, 10)
    stack.push(1, 20)
    assert stack.depth(0) == 1
    assert stack.depth(1) == 1
    assert stack.pop(1)[0] == 20
    assert stack.pop(0)[0] == 10


def test_spill_addresses_differ_across_lanes():
    stack = BaselineStack(rb_entries=1)
    a = stack.push(0, 1)
    assert a.ops == []
    spill0 = stack.push(0, 2).ops[0]
    stack.push(1, 1)
    spill1 = stack.push(1, 2).ops[0]
    assert spill0.address != spill1.address


def test_spill_addresses_differ_across_warps():
    warp0 = BaselineStack(rb_entries=1, warp_index=0)
    warp1 = BaselineStack(rb_entries=1, warp_index=1)
    warp0.push(0, 1)
    warp1.push(0, 1)
    op0 = warp0.push(0, 2).ops[0]
    op1 = warp1.push(0, 2).ops[0]
    assert op0.address != op1.address


def test_finish_clears_lane():
    stack = BaselineStack(rb_entries=2)
    for value in range(5):
        stack.push(0, value)
    stack.finish(0)
    assert stack.depth(0) == 0
    with pytest.raises(StackError):
        stack.pop(0)


def test_reset_clears_all_lanes():
    stack = BaselineStack(rb_entries=2)
    stack.push(0, 1)
    stack.push(5, 2)
    stack.reset()
    assert stack.depth(0) == 0
    assert stack.depth(5) == 0


def test_invalid_lane_raises():
    stack = BaselineStack(rb_entries=2, warp_size=8)
    with pytest.raises(StackError):
        stack.push(8, 1)


def test_invalid_rb_entries():
    with pytest.raises(StackError):
        BaselineStack(rb_entries=0)


def test_interleaved_spill_layout():
    """Consecutive spill indices of one lane land in different lines."""
    stack = BaselineStack(rb_entries=1)
    stack.push(0, 0)
    addresses = []
    for value in range(1, 4):
        addresses.append(stack.push(0, value).ops[0].address)
    strides = {b - a for a, b in zip(addresses, addresses[1:])}
    assert strides == {32 * 8}  # warp_size * ENTRY_BYTES
