"""Property-based LIFO equivalence: every stack architecture must pop
exactly what the unbounded reference stack pops, for arbitrary operation
sequences — including lane finishes that trigger reallocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack.baseline import BaselineStack
from repro.stack.full import FullStack
from repro.stack.reference import ReferenceStack
from repro.stack.sms import SmsStack

# An operation is (kind, lane, value): kind 0 = push, 1 = pop, 2 = finish.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=200,
)


def apply_ops(model, reference, ops):
    """Replay ops on both models; pops must agree."""
    from repro.stack.sms import SmsStack

    check = model.check_invariants if isinstance(model, SmsStack) else None
    finished = set()
    for i, (kind, lane, value) in enumerate(ops):
        if kind == 0 and lane not in finished:
            model.push(lane, value)
            reference.push(lane, value)
        elif kind == 1 and lane not in finished:
            if reference.depth(lane) == 0:
                continue
            expected, _ = reference.pop(lane)
            actual, _ = model.pop(lane)
            assert actual == expected
        elif kind == 2:
            model.finish(lane)
            reference.finish(lane)
            finished.add(lane)
        if check is not None and i % 7 == 0:
            check()
    if check is not None:
        check()
    # Remaining contents must agree too.
    for lane in range(8):
        assert model.contents(lane) == reference.contents(lane)
        assert model.depth(lane) == reference.depth(lane)


@settings(max_examples=150, deadline=None)
@given(operations)
def test_full_stack_equivalent(ops):
    apply_ops(FullStack(warp_size=8), ReferenceStack(warp_size=8), ops)


@settings(max_examples=150, deadline=None)
@given(operations, st.integers(min_value=1, max_value=9))
def test_baseline_equivalent(ops, rb_entries):
    apply_ops(
        BaselineStack(rb_entries=rb_entries, warp_size=8),
        ReferenceStack(warp_size=8),
        ops,
    )


@settings(max_examples=150, deadline=None)
@given(
    operations,
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
    st.booleans(),
)
def test_sms_equivalent(ops, rb_entries, sh_entries, skewed):
    apply_ops(
        SmsStack(
            rb_entries=rb_entries,
            sh_entries=sh_entries,
            skewed=skewed,
            warp_size=8,
        ),
        ReferenceStack(warp_size=8),
        ops,
    )


@settings(max_examples=200, deadline=None)
@given(
    operations,
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_sms_realloc_equivalent(ops, rb_entries, sh_entries, max_borrows, max_flushes):
    apply_ops(
        SmsStack(
            rb_entries=rb_entries,
            sh_entries=sh_entries,
            skewed=True,
            realloc=True,
            max_borrows=max_borrows,
            max_flushes=max_flushes,
            warp_size=8,
        ),
        ReferenceStack(warp_size=8),
        ops,
    )


@settings(max_examples=50, deadline=None)
@given(operations)
def test_sms_realloc_heavy_finish_pressure(ops):
    """Pre-finish most lanes so borrowing dominates from the start."""
    model = SmsStack(
        rb_entries=1, sh_entries=1, skewed=True, realloc=True, warp_size=8
    )
    reference = ReferenceStack(warp_size=8)
    for lane in range(2, 8):
        model.finish(lane)
        reference.finish(lane)
    filtered = [(k, lane % 2, v) for k, lane, v in ops]
    apply_ops(model, reference, filtered)
