"""Dynamic intra-warp reallocation tests (paper section V-B / VI-B)."""

import pytest

from repro.stack.ops import MemSpace, OpKind
from repro.stack.sms import SmsStack


def make_stack(**kwargs):
    defaults = dict(rb_entries=2, sh_entries=2, realloc=True)
    defaults.update(kwargs)
    return SmsStack(**defaults)


def fill(stack, lane, count, start=0):
    for value in range(start, start + count):
        stack.push(lane, value)


def test_borrow_from_finished_lane():
    stack = make_stack()
    stack.finish(1)  # lane 1 done; its SH stack becomes idle
    fill(stack, 0, 4)  # RB(2) + own SH(2) full
    before = stack.borrow_count
    stack.push(0, 100)  # needs another slot -> borrow lane 1's stack
    assert stack.borrow_count == before + 1
    assert stack.chain_length(0) == 2
    assert stack.global_occupancy(0) == 0


def test_no_borrow_without_idle_lane_flushes_instead():
    stack = make_stack()
    fill(stack, 0, 4)
    before_flush = stack.flush_count
    activity = stack.push(0, 100)
    assert stack.flush_count == before_flush + 1
    # The flush writes the whole bottom region to global memory.
    global_stores = [
        op for op in activity.ops
        if op.space is MemSpace.GLOBAL and op.kind is OpKind.STORE
    ]
    assert len(global_stores) == 2  # sh_entries worth
    assert stack.global_occupancy(0) == 2


def test_lifo_preserved_across_borrowing():
    stack = make_stack()
    stack.finish(1)
    stack.finish(2)
    values = list(range(12))
    fill(stack, 0, len(values))
    popped = [stack.pop(0)[0] for _ in values]
    assert popped == values[::-1]


def test_lifo_preserved_across_flushes():
    stack = make_stack()
    values = list(range(16))
    fill(stack, 0, len(values))
    popped = [stack.pop(0)[0] for _ in values]
    assert popped == values[::-1]


def test_borrowed_stack_released_when_emptied():
    stack = make_stack()
    stack.finish(1)
    fill(stack, 0, 5)  # borrows lane 1's region for the 5th value
    assert stack.chain_length(0) == 2
    assert not stack._idle[1]
    # Drain until the borrowed region empties.
    while stack.chain_length(0) > 1:
        stack.pop(0)
    assert stack._idle[1]


def test_released_stack_can_be_reborrowed_by_other_lane():
    stack = make_stack()
    stack.finish(1)
    fill(stack, 0, 5)
    while stack.chain_length(0) > 1:
        stack.pop(0)
    fill(stack, 3, 4)
    stack.push(3, 99)
    assert stack.chain_length(3) == 2
    assert not stack._idle[1]


def test_borrow_limit_respected():
    stack = make_stack(max_borrows=2)
    for lane in range(1, 6):
        stack.finish(lane)
    fill(stack, 0, 30)
    assert stack.chain_length(0) <= 3  # own + 2 borrowed


def test_max_borrows_four_gives_paper_capacity():
    """Paper: 8-entry SH x (1 own + 4 borrowed) + 8 RB = 48 entries."""
    stack = SmsStack(rb_entries=8, sh_entries=8, realloc=True)
    for lane in range(1, 5):
        stack.finish(lane)
    fill(stack, 0, 48)
    assert stack.global_occupancy(0) == 0
    assert stack.chain_length(0) == 5


def test_49th_entry_overflows_to_global():
    stack = SmsStack(rb_entries=8, sh_entries=8, realloc=True)
    for lane in range(1, 5):
        stack.finish(lane)
    fill(stack, 0, 49)
    assert stack.global_occupancy(0) > 0


def test_finish_releases_borrowed_stacks():
    stack = make_stack()
    stack.finish(1)
    fill(stack, 0, 5)
    assert not stack._idle[1]
    stack.finish(0)
    assert stack._idle[1]
    assert stack._idle[0]


def test_flush_count_limited_then_forced():
    stack = make_stack(max_flushes=1)
    before = stack.forced_flush_count
    fill(stack, 0, 20)
    # With no borrowable stacks and flush limit 1, later flushes are forced.
    assert stack.forced_flush_count > before
    # Still correct LIFO.
    popped = [stack.pop(0)[0] for _ in range(20)]
    assert popped == list(range(20))[::-1]


def test_chain_walk_latency_reported():
    stack = make_stack()
    stack.finish(1)
    fill(stack, 0, 5)  # chain length 2 now
    activity = stack.push(0, 50)
    assert activity.extra_cycles >= 1


def test_borrowed_region_uses_owner_addresses():
    stack = make_stack()
    stack.finish(1)
    fill(stack, 0, 4)
    activity = stack.push(0, 100)  # first value into borrowed region
    store = [op for op in activity.ops if op.space is MemSpace.SHARED][0]
    lane1_base = stack.layout.region_base(1)
    assert lane1_base <= store.address < lane1_base + stack.layout.region_bytes


def test_two_lanes_compete_for_one_idle_stack():
    stack = make_stack()
    stack.finish(5)
    fill(stack, 0, 4)
    fill(stack, 1, 4)
    stack.push(0, 100)  # takes the idle stack
    stack.push(1, 100)  # must flush instead
    assert stack.chain_length(0) == 2
    assert stack.chain_length(1) == 1
    assert stack.flush_count >= 1


def test_realloc_reduces_global_traffic():
    """The architectural claim: borrowing avoids global-memory spills."""
    without = SmsStack(rb_entries=2, sh_entries=2, realloc=False)
    with_ra = SmsStack(rb_entries=2, sh_entries=2, realloc=True)
    for stack in (without, with_ra):
        for lane in range(1, 8):
            stack.finish(lane)

    def global_ops(stack):
        count = 0
        for value in range(12):
            activity = stack.push(0, value)
            count += sum(1 for op in activity.ops if op.space is MemSpace.GLOBAL)
        return count

    assert global_ops(with_ra) < global_ops(without)
