"""Stack factory tests."""

import pytest

from repro.core.presets import baseline_config, full_stack_config, sms_config
from repro.stack.baseline import BaselineStack
from repro.stack.factory import make_stack_model
from repro.stack.full import FullStack
from repro.stack.sms import SmsStack


def test_full_config_builds_full_stack():
    assert isinstance(make_stack_model(full_stack_config()), FullStack)


def test_baseline_config_builds_baseline():
    model = make_stack_model(baseline_config(rb_entries=4))
    assert isinstance(model, BaselineStack)
    assert model.rb_entries == 4


def test_sms_config_builds_sms():
    config = sms_config(rb_entries=8, sh_entries=16, skewed=True, realloc=True)
    model = make_stack_model(config)
    assert isinstance(model, SmsStack)
    assert model.rb_entries == 8
    assert model.sh_entries == 16
    assert model.skewed
    assert model.realloc


def test_sms_flags_propagate_off():
    model = make_stack_model(sms_config(skewed=False, realloc=False))
    assert not model.skewed
    assert not model.realloc


def test_warp_slots_get_distinct_shared_blocks():
    config = sms_config()
    slot0 = make_stack_model(config, warp_index=0)
    slot1 = make_stack_model(config, warp_index=1)
    assert slot1.layout.base_address == slot0.layout.base_address + slot0.layout.total_bytes


def test_shared_blocks_wrap_per_sm():
    """Slot indices repeat per SM; shared memory is per-SM."""
    config = sms_config()
    sm0_slot0 = make_stack_model(config, warp_index=0)
    sm1_slot0 = make_stack_model(config, warp_index=config.max_warps_per_rt_unit)
    assert sm0_slot0.layout.base_address == sm1_slot0.layout.base_address


def test_global_spill_regions_unique_across_sms():
    config = sms_config()
    sm0 = make_stack_model(config, warp_index=0)
    sm1 = make_stack_model(config, warp_index=config.max_warps_per_rt_unit)
    assert sm0._spill_region.base != sm1._spill_region.base
