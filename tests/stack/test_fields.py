"""Ray-buffer field and overhead arithmetic tests (paper section VI-C)."""

import pytest

from repro.errors import ConfigError
from repro.stack.fields import RayBufferFields, field_bits, overhead_bytes_per_rt_unit


def test_default_fields():
    fields = RayBufferFields()
    assert fields.top == 0
    assert fields.bottom == 0
    assert not fields.overflow
    assert not fields.idle
    assert fields.next_tid == -1


def test_field_bits_paper_values():
    """8-entry SH stack: Top/Bottom 3 bits; NextTID 5; Priority/Flush 2."""
    bits = field_bits(8)
    assert bits["top"] == 3
    assert bits["bottom"] == 3
    assert bits["overflow"] == 1
    assert bits["idle"] == 1
    assert bits["next_tid"] == 5
    assert bits["priority"] == 2
    assert bits["flush"] == 2


def test_field_bits_scale_with_stack():
    assert field_bits(16)["top"] == 4
    assert field_bits(4)["top"] == 2
    assert field_bits(2)["top"] == 1


def test_field_bits_invalid():
    with pytest.raises(ConfigError):
        field_bits(0)


def test_overhead_paper_numbers():
    """Paper VI-C: 96 B Top/Bottom + 176 B management = 272 B per RT unit."""
    overhead = overhead_bytes_per_rt_unit(sh_entries=8)
    assert overhead["top_bottom_bytes"] == 96
    assert overhead["management_bytes"] == 176
    assert overhead["total_bytes"] == 272


def test_overhead_far_below_rb_doubling():
    """The paper's comparison: 272 B versus 8 KB for 8 more RB entries."""
    overhead = overhead_bytes_per_rt_unit(sh_entries=8)
    rb_doubling = 8 * 8 * 32 * 4  # 8 B x 8 entries x 32 threads x 4 warps
    assert overhead["total_bytes"] * 30 < rb_doubling


def test_overhead_scales_with_warps():
    two = overhead_bytes_per_rt_unit(sh_entries=8, warps_per_rt_unit=2)
    four = overhead_bytes_per_rt_unit(sh_entries=8, warps_per_rt_unit=4)
    assert four["total_bytes"] == 2 * two["total_bytes"]
