"""Skewed bank access formula tests (paper section VI-B / Fig. 9)."""

import pytest

from repro.errors import ConfigError
from repro.stack.skew import base_entry_index, skew_group_size


def test_group_size_paper_formula():
    # k = 32 / (N * 2)
    assert skew_group_size(8) == 2
    assert skew_group_size(4) == 4
    assert skew_group_size(2) == 8


def test_group_size_clamped_for_large_stacks():
    assert skew_group_size(16) == 1
    assert skew_group_size(32) == 1


def test_group_size_invalid():
    with pytest.raises(ConfigError):
        skew_group_size(0)


def test_paper_figure9_examples():
    """Threads 0/16 -> entry 0; 2/18 -> entry 1; 1/17 -> 0; 3/19 -> 1."""
    n = 8
    assert base_entry_index(0, n) == 0
    assert base_entry_index(16, n) == 0
    assert base_entry_index(2, n) == 1
    assert base_entry_index(18, n) == 1
    assert base_entry_index(1, n) == 0
    assert base_entry_index(17, n) == 0
    assert base_entry_index(3, n) == 1
    assert base_entry_index(19, n) == 1


def test_unskewed_all_zero():
    for tid in range(32):
        assert base_entry_index(tid, 8, skewed=False) == 0


def test_base_entry_within_stack():
    for n in (2, 4, 8, 16):
        for tid in range(32):
            assert 0 <= base_entry_index(tid, n) < n


def test_skew_spreads_evenly():
    """Each base entry is used by the same number of lanes."""
    for n in (4, 8, 16):
        counts = {}
        for tid in range(32):
            base = base_entry_index(tid, n)
            counts[base] = counts.get(base, 0) + 1
        used = set(counts.values())
        assert len(used) == 1  # perfectly balanced


def test_invalid_tid():
    with pytest.raises(ConfigError):
        base_entry_index(32, 8)
    with pytest.raises(ConfigError):
        base_entry_index(-1, 8)


def test_skew_reduces_same_entry_collisions():
    """Among even lanes (which share banks), skew separates base entries."""
    n = 8
    even_bases_skewed = {base_entry_index(t, n) for t in range(0, 32, 2)}
    even_bases_plain = {base_entry_index(t, n, skewed=False) for t in range(0, 32, 2)}
    assert len(even_bases_skewed) == n
    assert len(even_bases_plain) == 1
