"""Memory-op record and reference/full stack tests."""

import pytest

from repro.errors import StackError
from repro.stack.base import ENTRY_BYTES
from repro.stack.full import FullStack
from repro.stack.ops import (
    MemoryOp,
    MemSpace,
    OpKind,
    StackActivity,
    no_activity,
)
from repro.stack.reference import ReferenceStack
from repro.stack.spill import SpillRegion


def test_no_activity_is_empty():
    activity = no_activity()
    assert activity.ops == []
    assert activity.extra_cycles == 0


def test_merge_concatenates_in_order():
    a = StackActivity(
        ops=[MemoryOp(MemSpace.SHARED, OpKind.LOAD, 0)], extra_cycles=1
    )
    b = StackActivity(
        ops=[MemoryOp(MemSpace.GLOBAL, OpKind.STORE, 8)], extra_cycles=2
    )
    merged = a.merge(b)
    assert len(merged.ops) == 2
    assert merged.ops[0].space is MemSpace.SHARED
    assert merged.ops[1].space is MemSpace.GLOBAL
    assert merged.extra_cycles == 3


def test_space_filters():
    activity = StackActivity(
        ops=[
            MemoryOp(MemSpace.SHARED, OpKind.LOAD, 0),
            MemoryOp(MemSpace.GLOBAL, OpKind.STORE, 8),
            MemoryOp(MemSpace.SHARED, OpKind.STORE, 16),
        ]
    )
    assert len(activity.shared_ops) == 2
    assert len(activity.global_ops) == 1


def test_memory_op_default_size():
    op = MemoryOp(MemSpace.GLOBAL, OpKind.LOAD, 0)
    assert op.size_bytes == ENTRY_BYTES


def test_reference_stack_lifo():
    stack = ReferenceStack(warp_size=4)
    stack.push(2, 1)
    stack.push(2, 2)
    assert stack.pop(2)[0] == 2
    assert stack.pop(2)[0] == 1


def test_reference_stack_no_ops():
    stack = ReferenceStack(warp_size=4)
    assert stack.push(0, 1).ops == []
    assert stack.pop(0)[1].ops == []


def test_reference_pop_empty_raises():
    with pytest.raises(StackError):
        ReferenceStack().pop(0)


def test_reference_invalid_lane():
    with pytest.raises(StackError):
        ReferenceStack(warp_size=4).push(4, 0)


def test_full_stack_is_reference():
    stack = FullStack()
    for value in range(100):
        assert stack.push(0, value).ops == []
    for value in reversed(range(100)):
        popped, activity = stack.pop(0)
        assert popped == value
        assert activity.ops == []


def test_spill_region_interleaved_layout():
    region = SpillRegion(warp_index=0, warp_size=32)
    # Same index across lanes is contiguous (coalesces).
    assert region.address(1, 0) - region.address(0, 0) == ENTRY_BYTES
    # Same lane across indices strides by a full warp row.
    assert region.address(0, 1) - region.address(0, 0) == 32 * ENTRY_BYTES


def test_spill_region_warps_disjoint():
    a = SpillRegion(warp_index=0)
    b = SpillRegion(warp_index=1)
    assert b.base == a.base + a.warp_bytes


def test_spill_region_wraps_at_slot_limit():
    region = SpillRegion(warp_index=0)
    from repro.stack.spill import SPILL_SLOTS_PER_LANE

    assert region.address(0, SPILL_SLOTS_PER_LANE) == region.address(0, 0)
