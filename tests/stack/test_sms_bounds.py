"""SMS reallocation bound edges (paper VI-B limits).

The paper bounds intra-warp reallocation at ``max_borrows`` concurrent
borrowed regions and ``max_flushes`` flushes per region before the
forced path.  These tests drive each bound to its edge and one step
past, asserting the accounting, the structural invariants and —
property-style — value-exact LIFO recovery under borrow/flush rotation.
"""

import random

import pytest

from repro.stack.sms import SmsStack


def drain(stack, lane):
    values = []
    while stack.depth(lane):
        values.append(stack.pop(lane)[0])
    return values


# ----------------------------------------------------------------------
# borrow bound
# ----------------------------------------------------------------------


def test_borrow_stops_exactly_at_max_borrows():
    """A deep lane borrows up to max_borrows idle regions and no more."""
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=8, realloc=True, max_borrows=4
    )
    for other in range(1, 8):  # 7 idle donors available, only 4 borrowable
        stack.finish(other)
    values = list(range(0x100, 0x100 + 40))
    for value in values:  # deep enough to exhaust every borrow
        stack.push(0, value)
    assert stack.borrow_count == 4
    assert stack.chain_length(0) == 1 + 4  # own region + max_borrows
    stack.check_invariants()
    # past the bound the lane flushes instead of borrowing further
    assert stack.flush_count > 0
    assert drain(stack, 0) == values[::-1]


def test_borrow_exhaustion_falls_back_to_flush_not_deadlock():
    """With donors idle but the bound reached, pushes keep succeeding."""
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=8, realloc=True, max_borrows=1
    )
    for other in range(1, 8):
        stack.finish(other)
    values = list(range(30))
    for value in values:
        stack.push(0, value)
    assert stack.borrow_count == 1
    assert stack.chain_length(0) == 2
    assert stack.flush_count > 0
    assert drain(stack, 0) == values[::-1]


def test_no_borrowing_without_realloc():
    stack = SmsStack(rb_entries=2, sh_entries=2, warp_size=8, realloc=False)
    for other in range(1, 8):
        stack.finish(other)
    for value in range(30):
        stack.push(0, value)
    assert stack.borrow_count == 0
    assert stack.chain_length(0) == 1


def test_finish_returns_borrowed_regions_to_the_pool():
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=4, realloc=True, max_borrows=4
    )
    for other in range(1, 4):
        stack.finish(other)
    for value in range(20):
        stack.push(0, value)
    assert stack.borrow_count == 3
    stack.finish(0)
    stack.check_invariants()
    # a fresh (reset) warp can borrow the same regions again; the stats
    # counters accumulate (the RT unit harvests and zeroes them)
    stack.reset()
    for other in range(1, 4):
        stack.finish(other)
    for value in range(20):
        stack.push(0, value)
    assert stack.borrow_count == 6
    stack.check_invariants()


# ----------------------------------------------------------------------
# flush bound
# ----------------------------------------------------------------------


def test_forced_flush_past_max_flushes():
    """Nothing to borrow: the bottom region flushes gracefully up to
    max_flushes, then the forced path engages (counted, not deadlocked)."""
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=4, realloc=True, max_flushes=3
    )
    # every other lane stays active, so there are no idle donors
    values = list(range(0x200, 0x200 + 40))
    for value in values:
        stack.push(0, value)
    assert stack.borrow_count == 0
    assert stack.flush_count > 3  # the region kept rotating...
    assert stack.forced_flush_count == stack.flush_count - 3  # ...forced
    stack.check_invariants()
    assert drain(stack, 0) == values[::-1]


def test_flushes_within_budget_are_not_forced():
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=4, realloc=True, max_flushes=3
    )
    # RB(2) + SH(2) hold 4; pushes 5 and 6 each flush a full region
    for value in range(8):
        stack.push(0, value)
    assert 0 < stack.flush_count <= 3
    assert stack.forced_flush_count == 0


def test_flushed_entries_return_in_lifo_order():
    """The flush moves the *bottom* (oldest) region to global memory, so
    a full drain must still see strictly descending push order."""
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=2, realloc=True, max_flushes=1
    )
    values = [0x10_000 + i for i in range(25)]
    for value in values:
        stack.push(0, value)
    assert stack.global_occupancy(0) > 0  # flushes actually landed off-chip
    assert drain(stack, 0) == values[::-1]


# ----------------------------------------------------------------------
# property-style LIFO round-trips under borrow/flush rotation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_random_push_pop_lifo_under_rotation(seed):
    """Random interleavings across lanes, with lanes finishing mid-run to
    free regions for borrowing: every pop must return exactly what the
    reference (an unbounded per-lane list) predicts."""
    rng = random.Random(seed)
    warp_size = 8
    stack = SmsStack(
        rb_entries=2, sh_entries=2, warp_size=warp_size, realloc=True,
        max_borrows=3, max_flushes=2,
    )
    reference = {lane: [] for lane in range(warp_size)}
    live = set(range(warp_size))
    next_value = 0
    for _ in range(600):
        lane = rng.choice(sorted(live))
        action = rng.random()
        if action < 0.55:
            next_value += 1
            stack.push(lane, next_value)
            reference[lane].append(next_value)
        elif reference[lane]:
            got, _ = stack.pop(lane)
            assert got == reference[lane].pop()
        elif len(live) > 2 and rng.random() < 0.3:
            stack.finish(lane)  # free the region for borrowing
            live.discard(lane)
        for check in live:
            assert stack.depth(check) == len(reference[check])
        stack.check_invariants()
    # full drain: value-exact LIFO for every surviving lane
    for lane in sorted(live):
        assert drain(stack, lane) == reference[lane][::-1]
    stack.check_invariants()


@pytest.mark.parametrize("seed", range(3))
def test_guarded_random_rotation_stays_silent(seed):
    """The same property run under the GuardedStack observer: a correct
    model must never trip the guard, whatever the interleaving."""
    from repro.guard.invariants import GuardContext, GuardedStack

    rng = random.Random(seed)
    stack = GuardedStack(
        SmsStack(rb_entries=2, sh_entries=2, warp_size=8, realloc=True,
                 max_borrows=3, max_flushes=2),
        GuardContext(),
    )
    depths = [0] * 8
    live = set(range(8))
    for step in range(400):
        lane = rng.choice(sorted(live))
        if rng.random() < 0.55:
            stack.push(lane, step)
            depths[lane] += 1
        elif depths[lane]:
            stack.pop(lane)
            depths[lane] -= 1
        elif len(live) > 2:
            stack.finish(lane)
            live.discard(lane)
        if step % 20 == 0:
            # legitimate forced flushes are counted by the model itself
            stack.verify(forced_flushes=stack.unwrapped.forced_flush_count)
    stack.verify(forced_flushes=stack.unwrapped.forced_flush_count)
