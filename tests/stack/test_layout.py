"""Shared-memory layout tests (paper Fig. 9 bank picture)."""

import pytest

from repro.errors import ConfigError
from repro.stack.layout import (
    BANK_COUNT,
    ENTRY_BYTES,
    ROW_BYTES,
    SharedStackLayout,
    bank_of_word,
    words_of_access,
)


def test_region_bytes():
    assert SharedStackLayout(entries=8).region_bytes == 64


def test_lanes_per_row_sh8():
    # 64-byte regions: two lanes share each 128-byte row.
    assert SharedStackLayout(entries=8).lanes_per_row == 2


def test_lanes_per_row_sh4():
    assert SharedStackLayout(entries=4).lanes_per_row == 4


def test_lanes_per_row_sh16():
    assert SharedStackLayout(entries=16).lanes_per_row == 1


def test_total_bytes_sh8_warp():
    # 32 lanes x 64 B = 2 KB per warp.
    assert SharedStackLayout(entries=8).total_bytes == 2048


def test_paper_sram_split():
    """8-entry stacks x 32 threads x 4 warps = 8 KB shared (paper IV-B)."""
    per_warp = SharedStackLayout(entries=8).total_bytes
    assert per_warp * 4 == 8 * 1024


def test_even_lanes_low_banks():
    """Fig. 9: even threads cover banks 0-15, odd threads 16-31 (SH_8)."""
    layout = SharedStackLayout(entries=8)
    for lane in range(0, 32, 2):
        for entry in range(8):
            banks = layout.banks_of_entry(lane, entry)
            assert all(b < 16 for b in banks)
    for lane in range(1, 32, 2):
        for entry in range(8):
            banks = layout.banks_of_entry(lane, entry)
            assert all(b >= 16 for b in banks)


def test_entry_spans_adjacent_banks():
    layout = SharedStackLayout(entries=8)
    first, second = layout.banks_of_entry(0, 3)
    assert second == first + 1


def test_entry_banks_match_paper_examples():
    """Fig. 9: entry e of an even lane sits at banks (2e, 2e+1)."""
    layout = SharedStackLayout(entries=8)
    for entry in range(8):
        assert layout.banks_of_entry(0, entry) == (2 * entry, 2 * entry + 1)


def test_regions_disjoint():
    layout = SharedStackLayout(entries=8)
    spans = []
    for lane in range(32):
        base = layout.region_base(lane)
        spans.append((base, base + layout.region_bytes))
    spans.sort()
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b


def test_entry_address_within_region():
    layout = SharedStackLayout(entries=8)
    for lane in range(32):
        base = layout.region_base(lane)
        for entry in range(8):
            address = layout.entry_address(lane, entry)
            assert base <= address < base + layout.region_bytes


def test_base_address_offsets_everything():
    plain = SharedStackLayout(entries=8)
    offset = SharedStackLayout(entries=8, base_address=4096)
    assert offset.region_base(5) == plain.region_base(5) + 4096


def test_invalid_args():
    with pytest.raises(ConfigError):
        SharedStackLayout(entries=0)
    layout = SharedStackLayout(entries=8)
    with pytest.raises(ConfigError):
        layout.region_base(32)
    with pytest.raises(ConfigError):
        layout.entry_address(0, 8)


def test_words_of_access_8byte_entry():
    assert words_of_access(0, 8) == [0, 1]
    assert words_of_access(64, 8) == [16, 17]


def test_bank_of_word_wraps():
    assert bank_of_word(0) == 0
    assert bank_of_word(BANK_COUNT) == 0
    assert bank_of_word(BANK_COUNT + 3) == 3


def test_large_region_contiguous():
    """Regions >= one row are laid out contiguously per lane."""
    layout = SharedStackLayout(entries=32)  # 256 B per lane
    assert layout.region_base(1) == layout.region_base(0) + 256
