"""SMS two-level stack tests (paper sections IV and VI-A)."""

import pytest

from repro.errors import StackError
from repro.stack.ops import MemSpace, OpKind
from repro.stack.sms import SmsStack


def ops_signature(activity):
    return [(op.space, op.kind) for op in activity.ops]


def test_rb_only_no_traffic():
    stack = SmsStack(rb_entries=4, sh_entries=4)
    for value in range(4):
        assert stack.push(0, value).ops == []


def test_rb_overflow_spills_to_shared():
    """Fig. 7 step 1: RB overflow -> one shared store."""
    stack = SmsStack(rb_entries=4, sh_entries=4)
    for value in range(4):
        stack.push(0, value)
    activity = stack.push(0, 4)
    assert ops_signature(activity) == [(MemSpace.SHARED, OpKind.STORE)]
    assert stack.sh_occupancy(0) == 1


def test_pop_reloads_from_shared():
    """Fig. 7 step 2: pop -> shared load back into the RB stack."""
    stack = SmsStack(rb_entries=2, sh_entries=4)
    for value in range(4):
        stack.push(0, value)
    value, activity = stack.pop(0)
    assert value == 3
    assert (MemSpace.SHARED, OpKind.LOAD) in ops_signature(activity)


def test_double_overflow_sequence():
    """Paper VI-A push with both stacks full: shared load, global store,
    shared store."""
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for value in range(4):
        stack.push(0, value)
    activity = stack.push(0, 4)
    assert ops_signature(activity) == [
        (MemSpace.SHARED, OpKind.LOAD),
        (MemSpace.GLOBAL, OpKind.STORE),
        (MemSpace.SHARED, OpKind.STORE),
    ]
    assert stack.global_occupancy(0) == 1


def test_pop_with_global_resident_entries():
    """Paper VI-A pop with SH overflow: shared load, then global load +
    shared store refill."""
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for value in range(6):
        stack.push(0, value)
    assert stack.global_occupancy(0) == 2
    value, activity = stack.pop(0)
    assert value == 5
    signature = ops_signature(activity)
    assert signature[0] == (MemSpace.SHARED, OpKind.LOAD)
    assert (MemSpace.GLOBAL, OpKind.LOAD) in signature
    assert signature[-1] == (MemSpace.SHARED, OpKind.STORE)
    assert stack.global_occupancy(0) == 1


def test_lifo_order_through_all_levels():
    stack = SmsStack(rb_entries=2, sh_entries=2)
    values = list(range(10))
    for value in values:
        stack.push(0, value)
    popped = [stack.pop(0)[0] for _ in values]
    assert popped == values[::-1]


def test_depth_counts_all_levels():
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for value in range(7):
        stack.push(0, value)
    assert stack.depth(0) == 7
    assert len(stack._rb[0]) == 2
    assert stack.sh_occupancy(0) == 2
    assert stack.global_occupancy(0) == 3


def test_contents_oldest_first():
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for value in range(6):
        stack.push(0, value)
    assert stack.contents(0) == [0, 1, 2, 3, 4, 5]


def test_pop_empty_raises():
    stack = SmsStack()
    with pytest.raises(StackError):
        stack.pop(0)


def test_circular_reuse_of_sh_entries():
    """Push/pop cycles around the SH boundary reuse the circular queue."""
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for cycle in range(5):
        for value in range(5):
            stack.push(0, value)
        for _ in range(5):
            stack.pop(0)
        assert stack.depth(0) == 0


def test_shared_addresses_within_layout(small_scene):
    stack = SmsStack(rb_entries=2, sh_entries=4)
    for value in range(40):
        stack.push(0, value)
        stack.push(3, value)
    # Every shared op must target an address inside the warp's block.
    total = stack.layout.total_bytes
    for lane in (0, 3):
        for value in range(40, 44):
            activity = stack.push(lane, value)
            for op in activity.ops:
                if op.space is MemSpace.SHARED:
                    assert 0 <= op.address < total


def test_skewed_base_entry_used():
    plain = SmsStack(rb_entries=1, sh_entries=8, skewed=False)
    skewed = SmsStack(rb_entries=1, sh_entries=8, skewed=True)
    # Lane 2's first SH spill: plain starts at entry 0, skewed at entry 1.
    for stack in (plain, skewed):
        stack.push(2, 0)
    plain_op = plain.push(2, 1).ops[0]
    skewed_op = skewed.push(2, 1).ops[0]
    assert skewed_op.address == plain_op.address + 8


def test_finish_clears_and_marks_idle():
    stack = SmsStack(rb_entries=2, sh_entries=2, realloc=True)
    for value in range(5):
        stack.push(0, value)
    stack.finish(0)
    assert stack.depth(0) == 0
    assert stack._idle[0]


def test_reset_restores_initial_state():
    stack = SmsStack(rb_entries=2, sh_entries=2, realloc=True)
    for value in range(8):
        stack.push(0, value)
    stack.finish(1)
    stack.reset()
    assert stack.depth(0) == 0
    assert not stack._idle[1]


def test_invalid_params():
    with pytest.raises(StackError):
        SmsStack(rb_entries=0)
    with pytest.raises(StackError):
        SmsStack(sh_entries=0)


def test_any_hit_abandon_then_reuse():
    """Abandoning a deep stack (any-hit) must leave the warp clean."""
    stack = SmsStack(rb_entries=2, sh_entries=2)
    for value in range(9):
        stack.push(0, value)
    stack.finish(0)
    assert stack.depth(0) == 0
    with pytest.raises(StackError):
        stack.push(0, 1)  # finished lanes stay retired until reset
    stack.reset()
    for value in range(5):
        stack.push(0, value)
    assert [stack.pop(0)[0] for _ in range(5)] == [4, 3, 2, 1, 0]
