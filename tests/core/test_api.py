"""Public API tests."""

import pytest

from repro import (
    baseline_config,
    named_config,
    simulate,
    time_traces,
    trace_scene,
)


def test_trace_scene_returns_workload(small_scene):
    workload = trace_scene(small_scene, width=6, height=6, max_bounces=1)
    assert workload.ray_count >= 36
    assert workload.scene_name == "small"


def test_trace_scene_accepts_prebuilt_bvh(small_scene, small_bvh):
    workload = trace_scene(small_scene, width=4, height=4, bvh=small_bvh)
    assert workload.ray_count >= 16


def test_time_traces_result_fields(small_workload):
    result = time_traces(
        small_workload.all_traces, baseline_config(), scene_name="small"
    )
    assert result.scene_name == "small"
    assert result.ipc > 0
    assert result.cycles > 0
    assert result.ray_count == len(small_workload.all_traces)
    assert result.depth_stats is not None
    assert result.label == "RB_8"


def test_simulate_end_to_end(small_scene):
    result = simulate(small_scene, named_config("RB_8+SH_8+SK+RA"),
                      width=6, height=6, max_bounces=1)
    assert result.ipc > 0
    assert result.label == "RB_8+SH_8+SK+RA"


def test_simulate_default_config(small_scene):
    result = simulate(small_scene, width=4, height=4, max_bounces=0)
    assert result.label == "RB_8"


def test_speedup_over(small_scene):
    base = simulate(small_scene, named_config("RB_8"), width=6, height=6)
    fast = simulate(small_scene, named_config("RB_FULL"), width=6, height=6)
    assert fast.speedup_over(base) >= 1.0
    assert base.speedup_over(base) == pytest.approx(1.0)


def test_summary_contains_key_fields(small_scene):
    result = simulate(small_scene, width=4, height=4, max_bounces=0)
    text = result.summary()
    assert "IPC" in text
    assert "small" in text
