"""Analysis / export module tests."""

import csv
import json

import pytest

from repro.analysis import (
    Campaign,
    results_markdown,
    results_to_rows,
    write_csv,
    write_json,
)
from repro.experiments.common import WorkloadCache
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def campaign_result():
    campaign = Campaign(
        configs=("RB_8", "RB_FULL"),
        scenes=("SHIP",),
        params=WorkloadParams().scaled(0.25),
    )
    return campaign.run()


def test_campaign_runs_all_pairs(campaign_result):
    assert len(campaign_result.results) == 2
    labels = {r.label for r in campaign_result.results}
    assert labels == {"RB_8", "RB_FULL"}


def test_normalized_means(campaign_result):
    means = campaign_result.normalized_means()
    assert means["RB_8"] == pytest.approx(1.0)
    assert means["RB_FULL"] >= 0.95


def test_rows_have_all_columns(campaign_result):
    from repro.analysis.export import COLUMNS

    rows = results_to_rows(campaign_result.results)
    assert len(rows) == 2
    for row in rows:
        assert set(row) == set(COLUMNS)
        assert row["scene"] == "SHIP"


def test_csv_roundtrip(campaign_result, tmp_path):
    path = campaign_result.to_csv(tmp_path / "runs.csv")
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert float(rows[0]["ipc"]) > 0


def test_json_roundtrip(campaign_result, tmp_path):
    path = campaign_result.to_json(tmp_path / "runs.json")
    data = json.loads(path.read_text())
    assert len(data) == 2
    assert data[0]["config"] in ("RB_8", "RB_FULL")


def test_markdown_table(campaign_result):
    text = campaign_result.to_markdown()
    assert "| scene |" in text
    assert "SHIP" in text
    assert "1.000" in text  # baseline normalized to itself


def test_markdown_handles_missing_baseline(campaign_result):
    text = results_markdown(campaign_result.results, baseline_label="NOPE")
    assert "SHIP" in text  # falls back to raw IPC


def test_campaign_accepts_config_objects():
    from repro.core.presets import baseline_config

    campaign = Campaign(
        configs=(baseline_config(), "RB_FULL"),
        scenes=("SHIP",),
        params=WorkloadParams().scaled(0.25),
    )
    result = campaign.run()
    assert len(result.results) == 2


def test_campaign_reuses_external_cache():
    cache = WorkloadCache(
        params=WorkloadParams().scaled(0.25), scene_names=["SHIP"]
    )
    cache.traced("SHIP")
    campaign = Campaign(configs=("RB_8",), scenes=("SHIP",))
    result = campaign.run(cache)
    assert result.results[0].scene_name == "SHIP"
