"""CLI tests (driving main() directly, asserting on captured stdout)."""

import pytest

from repro.cli import build_parser, main


def test_scenes_lists_all(capsys):
    assert main(["scenes"]) == 0
    out = capsys.readouterr().out
    for name in ("WKND", "ROBOT", "SHIP", "PARK"):
        assert name in out


def test_simulate_runs(capsys):
    code = main([
        "simulate", "--scene", "SHIP", "--config", "RB_8",
        "--width", "8", "--height", "8", "--bounces", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "RB_8" in out


def test_simulate_sms_reports_realloc(capsys):
    main([
        "simulate", "--scene", "SHIP", "--config", "RB_2+SH_2+SK+RA",
        "--width", "8", "--height", "8", "--bounces", "1",
    ])
    out = capsys.readouterr().out
    assert "shared" in out


def test_compare_runs(capsys):
    code = main([
        "compare", "--scene", "SHIP", "--configs", "RB_8,RB_FULL",
        "--width", "8", "--height", "8", "--bounces", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "RB_FULL" in out
    assert "vs RB_8" in out


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_experiment_fig4_subset(capsys):
    code = main([
        "experiment", "fig4", "--scale", "0.25", "--scenes", "SHIP,REF",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig. 4" in out
    assert "SHIP" in out


def test_experiment_unknown_errors(capsys):
    assert main(["experiment", "fig99"]) == 2
    assert "error" in capsys.readouterr().err


def test_bad_config_errors(capsys):
    code = main([
        "simulate", "--scene", "SHIP", "--config", "BOGUS",
        "--width", "4", "--height", "4",
    ])
    assert code == 2


def test_overhead(capsys):
    assert main(["overhead"]) == 0
    assert "272" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
