"""Hardware overhead model tests (paper section VI-C)."""

import pytest

from repro.core.overhead import field_bit_table, sms_hardware_overhead
from repro.core.presets import sms_config


def test_paper_default_overhead_272_bytes():
    report = sms_hardware_overhead()
    assert report.sms_field_bytes == 272
    assert report.top_bottom_bytes == 96
    assert report.management_bytes == 176


def test_rb_stack_bytes_8kb():
    """8 B x 8 entries x 128 threads = 8 KB (the paper's comparison)."""
    report = sms_hardware_overhead()
    assert report.rb_stack_bytes == 8 * 1024
    assert report.rb_double_bytes == 8 * 1024


def test_shared_memory_carveout_8kb():
    assert sms_hardware_overhead().shared_memory_bytes == 8 * 1024


def test_overhead_scales_with_sh_entries():
    small = sms_hardware_overhead(sms_config(sh_entries=4))
    large = sms_hardware_overhead(sms_config(sh_entries=16))
    assert large.sms_field_bytes > small.sms_field_bytes


def test_summary_mentions_key_numbers():
    text = sms_hardware_overhead().summary()
    assert "272" in text
    assert "8192" in text


def test_field_bit_table_paper_values():
    bits = field_bit_table()
    assert bits == {
        "top": 3, "bottom": 3, "overflow": 1, "idle": 1,
        "next_tid": 5, "priority": 2, "flush": 2,
    }
    assert sum(bits.values()) == 17  # 6 index bits + 11 management bits
