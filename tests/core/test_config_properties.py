"""Property tests on configuration naming and derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.presets import named_config
from repro.gpu.config import GPUConfig


@given(
    rb=st.sampled_from([1, 2, 4, 8, 16, 32]),
    sh=st.sampled_from([0, 2, 4, 8, 16]),
    sk=st.booleans(),
    ra=st.booleans(),
    iw=st.booleans(),
)
def test_describe_roundtrips_through_named_config(rb, sh, sk, ra, iw):
    """describe() output always parses back to an equivalent config."""
    if sh == 0:
        sk = ra = iw = False
    config = GPUConfig(
        rb_stack_entries=rb,
        sh_stack_entries=sh,
        skewed_bank_access=sk,
        intra_warp_realloc=ra,
        inter_warp_realloc=iw,
    )
    parsed = named_config(config.describe())
    assert parsed.rb_stack_entries == rb
    assert parsed.sh_stack_entries == sh
    assert parsed.skewed_bank_access == sk
    assert parsed.intra_warp_realloc == ra
    assert parsed.inter_warp_realloc == iw
    assert parsed.describe() == config.describe()


@given(sh=st.sampled_from([1, 2, 4, 8, 16]))
def test_sram_split_conserved(sh):
    """L1D + shared carve-out always equals the unified SRAM."""
    config = GPUConfig(sh_stack_entries=sh)
    assert config.l1d_bytes + config.shared_memory_bytes == (
        config.unified_cache_bytes
    )


@given(sh=st.sampled_from([2, 4, 8, 16]))
def test_carveout_matches_stack_arithmetic(sh):
    """Carve-out = entries x 8 B x threads, padded to bank rows."""
    config = GPUConfig(sh_stack_entries=sh)
    raw = sh * 8 * config.warp_size * config.max_warps_per_rt_unit
    assert config.shared_memory_bytes >= raw
    assert config.shared_memory_bytes < raw + 128 * config.max_warps_per_rt_unit
