"""SimulationResult record tests."""

import pytest

from repro.core.presets import baseline_config, sms_config
from repro.core.results import SimulationResult
from repro.gpu.counters import Counters


def make_result(ipc_instructions=100, cycles=50, label_config=None):
    counters = Counters(instructions=ipc_instructions, cycles=cycles)
    return SimulationResult(
        scene_name="X",
        config=label_config or baseline_config(),
        counters=counters,
        ray_count=10,
    )


def test_ipc_and_cycles():
    result = make_result(100, 50)
    assert result.ipc == 2.0
    assert result.cycles == 50


def test_label_from_config():
    result = make_result(label_config=sms_config())
    assert result.label == "RB_8+SH_8+SK+RA"


def test_offchip_from_counters():
    result = make_result()
    result.counters.dram_reads = 3
    result.counters.dram_writes = 2
    assert result.offchip_accesses == 5


def test_speedup_over():
    fast = make_result(100, 25)
    slow = make_result(100, 50)
    assert fast.speedup_over(slow) == pytest.approx(2.0)


def test_speedup_over_zero_ipc():
    fast = make_result(100, 25)
    zero = make_result(0, 0)
    assert fast.speedup_over(zero) == float("inf")


def test_summary_fields():
    text = make_result().summary()
    assert "X" in text
    assert "RB_8" in text
    assert "IPC" in text
