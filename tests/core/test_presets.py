"""Configuration preset and name-parsing tests."""

import pytest

from repro.core.presets import (
    baseline_config,
    full_stack_config,
    named_config,
    sms_config,
    table1_config,
)
from repro.errors import ConfigError


def test_baseline_defaults():
    config = baseline_config()
    assert config.rb_stack_entries == 8
    assert config.sh_stack_entries == 0


def test_full_stack():
    assert full_stack_config().rb_stack_entries is None


def test_sms_defaults_to_paper_design():
    config = sms_config()
    assert config.rb_stack_entries == 8
    assert config.sh_stack_entries == 8
    assert config.skewed_bank_access
    assert config.intra_warp_realloc


def test_table1_restores_3mb_l2():
    assert table1_config().l2_bytes == 3 * 1024 * 1024


def test_named_baseline():
    assert named_config("RB_8").describe() == "RB_8"
    assert named_config("RB_2").rb_stack_entries == 2


def test_named_full():
    assert named_config("RB_FULL").rb_stack_entries is None


def test_named_sms_variants():
    assert named_config("RB_8+SH_8").sh_stack_entries == 8
    assert named_config("RB_8+SH_8+SK").skewed_bank_access
    assert not named_config("RB_8+SH_8+SK").intra_warp_realloc
    full = named_config("RB_4+SH_16+SK+RA")
    assert full.rb_stack_entries == 4
    assert full.sh_stack_entries == 16
    assert full.skewed_bank_access and full.intra_warp_realloc


def test_named_roundtrips_describe():
    for name in ["RB_2", "RB_8", "RB_FULL", "RB_8+SH_4", "RB_8+SH_8+SK",
                 "RB_8+SH_8+SK+RA"]:
        assert named_config(name).describe() == name


def test_named_rejects_garbage():
    for bad in ["RB", "SH_8", "RB_8+RA", "RB_8+SK", "RB_FULL+SH_8", "rbx"]:
        with pytest.raises(ConfigError):
            named_config(bad)


def test_named_accepts_overrides():
    config = named_config("RB_8", num_sms=2)
    assert config.num_sms == 2


def test_named_strips_whitespace():
    assert named_config("  RB_8 ").describe() == "RB_8"
