"""Token-bucket tests on a manual clock: exact, deterministic refill."""

import pytest

from repro.runtime.clock import ManualClock
from repro.service.limiter import TokenBucket


@pytest.fixture
def clock():
    return ManualClock()


def test_burst_then_shed(clock):
    bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
    retry = bucket.try_acquire()
    assert retry == pytest.approx(0.1)


def test_failed_acquire_leaves_bucket_untouched(clock):
    bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
    assert bucket.try_acquire() == 0.0
    first = bucket.try_acquire()
    second = bucket.try_acquire()
    assert first == second == pytest.approx(0.1)


def test_refill_is_continuous_and_capped(clock):
    bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
    bucket.try_acquire()
    bucket.try_acquire()
    clock.advance(0.05)
    assert bucket.available == pytest.approx(0.5)
    clock.advance(10.0)
    assert bucket.available == pytest.approx(2.0)  # capped at burst


def test_retry_after_is_honest(clock):
    """Waiting exactly the hinted time makes the next acquire succeed."""
    bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
    assert bucket.try_acquire() == 0.0
    retry = bucket.try_acquire()
    clock.advance(retry)
    assert bucket.try_acquire() == 0.0


def test_multi_token_acquire(clock):
    bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
    assert bucket.try_acquire(4.0) == 0.0
    assert bucket.try_acquire(2.0) == pytest.approx(1.0)
