"""The service chaos campaign: every fault class, bit-identical, visible."""

import pytest

from repro.errors import ConfigError
from repro.service import SERVICE_FAULT_CLASSES, ServiceFaultSpec
from repro.service.chaos import (
    DEGRADATION_MARKERS,
    chaos_jobs,
    run_service_chaos_campaign,
)


def test_fault_spec_validation():
    with pytest.raises(ConfigError):
        ServiceFaultSpec(kind="meteor_strike")
    with pytest.raises(ConfigError):
        ServiceFaultSpec(kind="shard_kill", trigger=0)
    spec = ServiceFaultSpec(kind="shard_kill", shard=1, trigger=3)
    assert (spec.shard, spec.trigger) == (1, 3)


def test_every_fault_class_has_markers():
    assert set(DEGRADATION_MARKERS) == set(SERVICE_FAULT_CLASSES)


def test_chaos_jobs_are_distinct_and_deterministic():
    jobs = chaos_jobs(count=4)
    assert len({job.key() for job in jobs}) == 4
    assert [j.key() for j in chaos_jobs(count=4)] == [j.key() for j in jobs]


def test_campaign_rejects_unknown_kinds():
    with pytest.raises(ConfigError):
        run_service_chaos_campaign(kinds=["meteor_strike"])


def test_full_campaign_passes():
    """The acceptance criterion: each fault class completes with
    bit-identical results and its degradation path visible in metrics."""
    report = run_service_chaos_campaign(job_count=4)
    assert [o.kind for o in report.outcomes] == list(SERVICE_FAULT_CLASSES)
    for outcome in report.outcomes:
        assert outcome.identical, f"{outcome.kind}: results not identical"
        assert not outcome.missing_markers, (
            f"{outcome.kind}: degradation invisible "
            f"({outcome.missing_markers})"
        )
    assert report.all_passed
    summary = report.summary()
    assert "all faults survived bit-identically" in summary
    for kind in SERVICE_FAULT_CLASSES:
        assert kind in summary
