"""HTTP API tests: wire round-trip, endpoints, streaming, error codes."""

import asyncio
import json
import threading

import pytest

from repro.core.presets import named_config
from repro.errors import ConfigError, ServiceError
from repro.runtime.job import SimulationJob
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
    SimulationService,
)
from repro.service.wire import job_from_wire, job_to_wire


def tiny_job(scene="FOX", **overrides) -> SimulationJob:
    fields = dict(
        scene=scene, config=named_config("RB_8"), width=8, height=8,
        spp=1, max_bounces=2,
    )
    fields.update(overrides)
    return SimulationJob(**fields)


# ---------------------------------------------------------------- wire


def test_wire_round_trip_preserves_the_key():
    job = tiny_job()
    assert job_from_wire(job_to_wire(job)).key() == job.key()


def test_wire_accepts_preset_labels():
    rebuilt = job_from_wire({"scene": "FOX", "config": "RB_8",
                             "width": 8, "height": 8, "spp": 1,
                             "max_bounces": 2})
    assert rebuilt == tiny_job()


def test_wire_rejects_unknown_fields():
    with pytest.raises(ConfigError):
        job_from_wire({"scene": "FOX", "evil": True})
    with pytest.raises(ConfigError):
        job_from_wire({"width": 8})  # no scene
    with pytest.raises(ConfigError):
        job_from_wire({"scene": "FOX", "config": 42})


# ------------------------------------------------------------- server


@pytest.fixture(scope="module")
def server():
    """A live service + HTTP server on an ephemeral port, own thread."""
    ready = threading.Event()
    state = {}

    def serve():
        async def main():
            config = ServiceConfig(
                shards=2, poll_tick=0.01, heartbeat_interval=0.02,
            )
            async with SimulationService(config) as service:
                http = ServiceHTTPServer(service, "127.0.0.1", 0)
                await http.start()
                state["port"] = http.port
                state["stop"] = asyncio.Event()
                state["loop"] = asyncio.get_running_loop()
                ready.set()
                await state["stop"].wait()
                await http.stop()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(15), "server never came up"
    yield state
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server["port"], timeout=60.0)


def test_submit_status_result_round_trip(client):
    job = tiny_job()
    ticket = client.submit(job)["ticket"]
    result = client.result(ticket)
    assert result.to_dict() == job.run().to_dict()
    status = client.status(ticket)
    assert status["state"] == "done"
    assert [e["event"] for e in status["events"]][-1] == "done"


def test_resubmission_is_deduplicated(client):
    job = tiny_job(scene="WKND")
    first = client.submit(job)
    second = client.submit(job)
    assert second["key"] == first["key"]
    assert client.result(second["ticket"]).to_dict() == \
        client.result(first["ticket"]).to_dict()


def test_healthz_and_metrics(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["healthy_shards"] == 2
    metrics = client.metrics()
    assert metrics["submitted"] >= 1
    assert "shed" in metrics and "serial_fallbacks" in metrics


def test_bad_submission_is_a_400(client):
    with pytest.raises(ConfigError):
        client._request("POST", "/submit", {"scene": "FOX", "evil": 1})


def test_unknown_ticket_is_a_404(client):
    with pytest.raises(ServiceError):
        client.status("missing-99")
    with pytest.raises(ServiceError):
        client.result("missing-99")


def test_unknown_endpoint_is_a_404(client):
    with pytest.raises(ServiceError):
        client._request("GET", "/nope")


def test_stream_emits_lifecycle_events(server, client):
    import http.client as http_client

    ticket = client.submit(tiny_job(scene="SPRNG"))["ticket"]
    connection = http_client.HTTPConnection(
        "127.0.0.1", server["port"], timeout=60.0
    )
    connection.request("GET", f"/stream/{ticket}")
    response = connection.getresponse()
    assert response.status == 200
    assert response.getheader("Content-Type") == "application/x-ndjson"
    events = [json.loads(line) for line in response.read().splitlines()]
    connection.close()
    kinds = [event["event"] for event in events]
    assert kinds[0] == "admitted"
    assert kinds[-1] == "settled"
    assert events[-1]["state"] == "done"


def test_client_url_parsing():
    parsed = ServiceClient.from_url("http://127.0.0.1:9999")
    assert (parsed.host, parsed.port) == ("127.0.0.1", 9999)
    assert ServiceClient.from_url("localhost:8642/").port == 8642
    with pytest.raises(ConfigError):
        ServiceClient.from_url("not a url")
