"""Coordinator tests: dedup, retry policy, stealing, tickets, store."""

import asyncio

import pytest

from repro.errors import JobExecutionError, ServiceError
from repro.runtime.store import ResultStore
from repro.service.config import ServiceConfig
from repro.service.coordinator import SimulationService

from tests.service.stubs import GuardStubJob, StubJob


def fast_config(**overrides) -> ServiceConfig:
    base = dict(
        shards=2, queue_depth=16, rate=500.0, burst=128,
        heartbeat_interval=0.02, heartbeat_timeout=1.0, poll_tick=0.01,
        backoff_base=0.01, backoff_cap=0.05, breaker_cooldown=0.05,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def run(coro):
    return asyncio.run(coro)


def test_run_jobs_returns_in_submission_order():
    async def main():
        async with SimulationService(fast_config()) as service:
            jobs = [StubJob(f"order-{i}") for i in range(8)]
            results = await service.run_jobs(jobs)
            assert [r.name for r in results] == [j.name for j in jobs]
            assert results == [j.run() for j in jobs]
            assert service.metrics.completed == 8
            assert sum(service.metrics.per_shard_completed) == 8

    run(main())


def test_single_flight_coalesces_duplicates():
    async def main():
        async with SimulationService(fast_config()) as service:
            job = StubJob("dup")
            first = service.submit(job)
            second = service.submit(job)
            assert second["coalesced"] is True
            assert first["key"] == second["key"]
            assert first["ticket"] != second["ticket"]
            a = await service.result(first["ticket"])
            b = await service.result(second["ticket"])
            assert a == b
            assert service.metrics.admitted == 1
            assert service.metrics.coalesced == 1

    run(main())


def test_done_cache_serves_repeat_submissions():
    async def main():
        async with SimulationService(fast_config()) as service:
            job = StubJob("memo")
            ticket = service.submit(job)["ticket"]
            await service.result(ticket)
            again = service.submit(job)
            assert again["state"] == "done"
            assert service.metrics.memory_hits == 1
            assert await service.result(again["ticket"]) == job.run()

    run(main())


def test_persistent_store_hit_skips_execution(tmp_path):
    # A real SimulationJob: the store round-trips SimulationResult
    # payloads (stub results would quarantine as schema mismatches).
    from repro.core.presets import named_config
    from repro.runtime.job import SimulationJob

    job = SimulationJob(
        scene="FOX", config=named_config("RB_8"), width=8, height=8,
        spp=1, max_bounces=2,
    )

    async def main():
        store = ResultStore(tmp_path / "store")
        async with SimulationService(fast_config(), store=store) as service:
            first = await service.result(service.submit(job)["ticket"])
            assert store.path_for(job.key()).exists()
        # A fresh service (cold memory) must hit the disk store.
        async with SimulationService(fast_config(), store=store) as service:
            ticket = service.submit(job)
            assert ticket["state"] == "done"
            assert service.metrics.cache_hits == 1
            assert service.metrics.admitted == 0
            assert await service.result(ticket["ticket"]) == first

    run(main())


def test_transient_job_failure_retries_with_backoff(tmp_path):
    async def main():
        async with SimulationService(fast_config()) as service:
            job = StubJob("flaky", fail_times=1, marker_dir=str(tmp_path))
            result = await service.result(service.submit(job)["ticket"])
            assert result.name == "flaky"
            assert service.metrics.retries == 1
            assert service.metrics.backoff_total_s > 0

    run(main())


def test_retry_budget_exhaustion_fails_structurally(tmp_path):
    async def main():
        config = fast_config(retries=1)
        async with SimulationService(config) as service:
            job = StubJob("doomed", fail_times=5, marker_dir=str(tmp_path))
            ticket = service.submit(job)["ticket"]
            with pytest.raises(JobExecutionError) as caught:
                await service.result(ticket)
            assert "ValueError" in str(caught.value)
            assert service.metrics.failed == 1
            assert service.metrics.retries == 1

    run(main())


def test_guard_violation_never_retried(tmp_path):
    async def main():
        store = ResultStore(tmp_path / "store")
        async with SimulationService(fast_config(), store=store) as service:
            job = GuardStubJob("broken")
            ticket = service.submit(job)["ticket"]
            with pytest.raises(JobExecutionError):
                await service.result(ticket)
            assert service.metrics.retries == 0
            assert service.metrics.failed == 1
            # The failure is persisted as evidence, like the executor's.
            assert sum(1 for _ in store.failures()) == 1

    run(main())


def test_idle_shards_steal_from_long_queues():
    # Pick job names that all hash-route to shard 0: shard 1 starts
    # idle with an empty queue and can only get work by stealing.
    def routed_to_zero(count):
        jobs, index = [], 0
        while len(jobs) < count:
            job = StubJob(f"steal-{index}")
            if int(job.key()[:8], 16) % 2 == 0:
                jobs.append(job)
            index += 1
        return jobs

    async def main():
        async with SimulationService(fast_config(shards=2)) as service:
            jobs = routed_to_zero(12)
            await service.run_jobs(jobs)
            assert service.metrics.completed == 12
            assert service.metrics.steals > 0
            # The thief did real work, not just bookkeeping.
            assert service.metrics.per_shard_completed[1] > 0

    run(main())


def test_status_and_events_trace_the_lifecycle():
    async def main():
        async with SimulationService(fast_config()) as service:
            ticket = service.submit(StubJob("traced"))["ticket"]
            await service.result(ticket)
            status = service.status(ticket)
            assert status["state"] == "done"
            kinds = [event["event"] for event in status["events"]]
            assert kinds[0] == "admitted"
            assert kinds[-1] == "done"
            assert "dispatched" in kinds

    run(main())


def test_unknown_ticket_raises_service_error():
    async def main():
        async with SimulationService(fast_config()) as service:
            assert service.status("nope-1") is None
            with pytest.raises(ServiceError):
                await service.result("nope-1")

    run(main())


def test_submit_before_start_is_an_error():
    service = SimulationService(fast_config())
    with pytest.raises(ServiceError):
        service.submit(StubJob("early"))


def test_healthz_reports_fleet_shape():
    async def main():
        async with SimulationService(fast_config(shards=2)) as service:
            await service.run_jobs([StubJob("health")])
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["healthy_shards"] == 2
            assert len(health["shards"]) == 2

    run(main())
