"""Circuit-breaker tests: trip, cooldown, half-open probe, recovery."""

import pytest

from repro.runtime.clock import ManualClock
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture
def clock():
    return ManualClock()


def test_trips_after_consecutive_failures(clock):
    breaker = CircuitBreaker(threshold=2, cooldown=1.0, clock=clock)
    assert breaker.state == CLOSED
    assert breaker.record_failure() is False
    assert breaker.record_failure() is True  # the trip
    assert breaker.state == OPEN
    assert not breaker.allow()


def test_success_resets_the_failure_streak(clock):
    breaker = CircuitBreaker(threshold=2, cooldown=1.0, clock=clock)
    breaker.record_failure()
    breaker.record_success()
    assert breaker.record_failure() is False
    assert breaker.state == CLOSED


def test_cooldown_opens_one_probe_slot(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.advance(1.0)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()       # the single probe
    assert not breaker.allow()   # no second job while probing


def test_probe_success_recovers(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    assert breaker.record_success() is True  # recovery, not a no-op
    assert breaker.state == CLOSED
    assert breaker.allow()


def test_probe_failure_reopens_for_another_cooldown(clock):
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    assert breaker.record_failure() is True  # re-trip from half-open
    assert breaker.state == OPEN
    clock.advance(0.5)
    assert not breaker.allow()
    clock.advance(0.5)
    assert breaker.allow()


def test_routing_is_looser_than_dispatch(clock):
    """A half-open shard may queue work even while its probe is out."""
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow_routing()
    clock.advance(1.0)
    assert breaker.allow()
    assert not breaker.allow()
    assert breaker.allow_routing()
