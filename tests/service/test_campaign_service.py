"""Campaign-over-service tests: the service path is a drop-in executor."""

import asyncio
import threading

import pytest

from repro.analysis.campaign import Campaign
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
    SimulationService,
)
from repro.workloads.params import WorkloadParams

PARAMS = WorkloadParams().scaled(0.25)


@pytest.fixture(scope="module")
def server():
    ready = threading.Event()
    state = {}

    def serve():
        async def main():
            config = ServiceConfig(
                shards=2, poll_tick=0.01, heartbeat_interval=0.02,
            )
            async with SimulationService(config) as service:
                http = ServiceHTTPServer(service, "127.0.0.1", 0)
                await http.start()
                state["port"] = http.port
                state["stop"] = asyncio.Event()
                state["loop"] = asyncio.get_running_loop()
                ready.set()
                await state["stop"].wait()
                await http.stop()

        asyncio.run(main())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(15), "server never came up"
    yield state
    state["loop"].call_soon_threadsafe(state["stop"].set)
    thread.join(timeout=10)


def small_campaign() -> Campaign:
    return Campaign(
        configs=("RB_8", "RB_8+SH_8+SK+RA"),
        scenes=("WKND", "FOX"),
        params=PARAMS,
        jobs=1,
        use_cache=False,
    )


def test_service_campaign_matches_local(server):
    campaign = small_campaign()
    client = ServiceClient(port=server["port"], timeout=120.0)
    via_service = campaign.run(service=client)
    local = campaign.run()
    assert [r.to_dict() for r in via_service.results] == [
        r.to_dict() for r in local.results
    ]
    # Aggregates built on the results agree too.
    assert via_service.normalized_means() == local.normalized_means()


def test_campaign_accepts_a_url(server):
    campaign = small_campaign()
    result = campaign.run(service=f"http://127.0.0.1:{server['port']}")
    assert len(result.results) == 4
    assert all(r.counters is not None for r in result.results)
