"""Failover tests: crashes, hangs, corruption, redelivery, fallback.

The headline assertion, per the service contract: kill a shard
mid-campaign and the aggregate counters are bit-identical to a clean
serial run — placement and recovery never leak into results.
"""

import asyncio

from repro.service.config import ServiceConfig
from repro.service.coordinator import SimulationService
from repro.service.faults import ServiceFaultSpec

from tests.service.stubs import StubJob, SuicideJob


def fast_config(**overrides) -> ServiceConfig:
    base = dict(
        shards=2, queue_depth=16, rate=500.0, burst=128,
        heartbeat_interval=0.02, heartbeat_timeout=0.35, poll_tick=0.01,
        backoff_base=0.01, backoff_cap=0.05, breaker_cooldown=0.05,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def run(coro):
    return asyncio.run(coro)


def test_shard_kill_mid_campaign_is_bit_identical():
    async def main():
        fault = ServiceFaultSpec(kind="shard_kill", shard=0, trigger=1)
        async with SimulationService(fast_config(), fault=fault) as service:
            jobs = [StubJob(f"kill-{i}") for i in range(8)]
            results = await service.run_jobs(jobs)
            clean = [job.run() for job in jobs]
            assert [r.to_dict() for r in results] == [
                c.to_dict() for c in clean
            ]
            metrics = service.metrics
            assert metrics.shard_crashes == 1
            assert metrics.redeliveries == 1
            assert metrics.shard_restarts == 1
            assert metrics.completed == 8

    run(main())


def test_heartbeat_freeze_detected_and_killed():
    async def main():
        fault = ServiceFaultSpec(
            kind="heartbeat_freeze", shard=1, trigger=1
        )
        async with SimulationService(fast_config(), fault=fault) as service:
            jobs = [StubJob(f"hang-{i}") for i in range(6)]
            results = await service.run_jobs(jobs)
            assert results == [job.run() for job in jobs]
            assert service.metrics.heartbeat_timeouts == 1
            assert service.metrics.redeliveries == 1

    run(main())


def test_corrupt_payload_rejected_by_checksum():
    async def main():
        fault = ServiceFaultSpec(
            kind="corrupt_result", shard=0, trigger=1
        )
        async with SimulationService(fast_config(), fault=fault) as service:
            jobs = [StubJob(f"corrupt-{i}") for i in range(6)]
            results = await service.run_jobs(jobs)
            assert results == [job.run() for job in jobs]
            assert service.metrics.corrupt_payloads == 1
            # The corrupted answer was redelivered and recomputed, never
            # served: values are the pure function of the name.
            assert all(
                result.value == job.run().value
                for result, job in zip(results, jobs)
            )

    run(main())


def test_restarted_shard_rejoins_the_fleet():
    async def main():
        fault = ServiceFaultSpec(kind="shard_kill", shard=0, trigger=1)
        config = fast_config()
        async with SimulationService(config, fault=fault) as service:
            await service.run_jobs([StubJob(f"wave1-{i}") for i in range(4)])
            # Give the restart a moment, then prove shard 0 works again.
            await service.clock.sleep(0.1)
            await service.run_jobs([StubJob(f"wave2-{i}") for i in range(8)])
            health = service.healthz()
            assert health["status"] == "ok"
            assert health["healthy_shards"] == 2
            assert service.metrics.per_shard_completed[0] > 0

    run(main())


def test_breaker_trips_on_repeat_crashes_then_recovers():
    """A shard that keeps dying trips its breaker on schedule; the
    breaker recovers once a healthy replacement serves a probe."""

    async def main():
        config = fast_config(
            shards=2, breaker_threshold=2, breaker_cooldown=0.2,
            max_redeliveries=4, max_restarts=10,
        )
        async with SimulationService(config) as service:
            # Every SuicideJob kills whichever worker runs it; with two
            # shards and several victims, some shard eats >= 2 crashes
            # consecutively and must trip.
            jobs = [SuicideJob(f"victim-{i}") for i in range(4)]
            results = await service.run_jobs(jobs)
            assert [r.to_dict() for r in results] == [
                j.run().to_dict() for j in jobs
            ]
            assert service.metrics.shard_crashes >= 4
            assert service.metrics.breaker_trips >= 1
            # Recovery: clean jobs after the storm close the breakers.
            clean = [StubJob(f"after-{i}") for i in range(6)]
            await service.run_jobs(clean)
            health = service.healthz()
            assert all(
                shard["breaker"] != "open" or shard["retired"]
                for shard in health["shards"]
            )

    run(main())


def test_redelivery_budget_falls_back_to_serial():
    async def main():
        config = fast_config(
            shards=1, max_redeliveries=1, max_restarts=2,
            breaker_threshold=10,
        )
        async with SimulationService(config) as service:
            job = SuicideJob("stubborn")
            result = await service.result(service.submit(job)["ticket"])
            # The worker died on every delivery; the serial fallback (in
            # this process, where SuicideJob behaves) produced the result.
            assert result.to_dict() == job.run().to_dict()
            assert service.metrics.serial_fallbacks >= 1
            # One shard, so the first redelivery already exhausts the
            # alternatives and marks the entry for serial fallback.
            assert service.metrics.redeliveries >= 1

    run(main())
