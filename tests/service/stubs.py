"""Picklable stub jobs for the service tests.

They live in an importable module (not a test file) because shard worker
processes must unpickle them; they mimic the job surface the service
relies on — ``key()``, ``run()``, picklability — while steering failure
behavior through flags and cross-process marker files (same idiom as
the executor tests).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass

from repro.errors import GuardViolationError


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


@dataclass(frozen=True)
class StubResult:
    name: str
    value: int

    def to_dict(self):
        return {"name": self.name, "value": self.value}


@dataclass(frozen=True)
class StubJob:
    """Deterministic toy job: value is a pure function of the name.

    ``fail_times`` makes the first N attempts raise, counted through a
    marker file under ``marker_dir`` so the count survives process
    boundaries — point it at a per-test temp directory.
    ``duration`` busy-holds the worker so queues observably fill.
    """

    name: str
    fail_times: int = 0
    marker_dir: str = "/tmp"
    duration: float = 0.0

    def key(self) -> str:
        return hashlib.sha256(f"stub:{self.name}".encode()).hexdigest()

    def run(self) -> StubResult:
        if self.duration:
            time.sleep(self.duration)
        if self.fail_times:
            marker = os.path.join(
                self.marker_dir, f"stub-{self.key()[:12]}"
            )
            seen = 0
            if os.path.exists(marker):
                with open(marker) as handle:
                    seen = int(handle.read() or 0)
            if seen < self.fail_times:
                with open(marker, "w") as handle:
                    handle.write(str(seen + 1))
                raise ValueError(f"transient failure {seen + 1}")
        digest = hashlib.sha256(self.name.encode()).digest()
        return StubResult(self.name, int.from_bytes(digest[:4], "big"))


@dataclass(frozen=True)
class GuardStubJob:
    """Always raises a guard violation (deterministic, never retried)."""

    name: str

    def key(self) -> str:
        return hashlib.sha256(f"guard:{self.name}".encode()).hexdigest()

    def run(self):
        raise GuardViolationError(f"stack invariant broken in {self.name}")


@dataclass(frozen=True)
class SuicideJob:
    """Kills its worker process mid-job — but runs fine in-process.

    The in-process path matters: after the redelivery budget is spent
    the coordinator's serial fallback runs the job in the main process,
    which must yield the real result, not kill the test.
    """

    name: str

    def key(self) -> str:
        return hashlib.sha256(f"suicide:{self.name}".encode()).hexdigest()

    def run(self) -> StubResult:
        if _in_worker():
            os.kill(os.getpid(), signal.SIGKILL)
        digest = hashlib.sha256(self.name.encode()).digest()
        return StubResult(self.name, int.from_bytes(digest[:4], "big"))
