"""Admission-control tests: rate shedding, queue bounds, flood smoke."""

import asyncio

import pytest

from repro.errors import ServiceOverloadError
from repro.service.config import ServiceConfig
from repro.service.coordinator import SimulationService

from tests.service.stubs import StubJob


def run(coro):
    return asyncio.run(coro)


def test_rate_shed_carries_retry_after():
    async def main():
        config = ServiceConfig(
            shards=1, rate=5.0, burst=2, poll_tick=0.01,
            heartbeat_interval=0.02,
        )
        async with SimulationService(config) as service:
            service.submit(StubJob("rate-0"))
            service.submit(StubJob("rate-1"))
            with pytest.raises(ServiceOverloadError) as caught:
                service.submit(StubJob("rate-2"))
            assert caught.value.reason == "rate"
            assert caught.value.retry_after > 0
            assert service.metrics.shed_rate == 1

    run(main())


def test_queue_shed_when_all_queues_full():
    async def main():
        config = ServiceConfig(
            shards=1, queue_depth=2, rate=1000.0, burst=64,
            poll_tick=0.05, heartbeat_interval=0.02,
        )
        async with SimulationService(config) as service:
            # Slow jobs pin the worker; the queue bound then bites.
            submitted = 0
            shed = None
            for index in range(12):
                try:
                    service.submit(
                        StubJob(f"queue-{index}", duration=0.2)
                    )
                    submitted += 1
                except ServiceOverloadError as overload:
                    shed = overload
                    break
            assert shed is not None, "queue bound never engaged"
            assert shed.reason == "queue"
            assert shed.retry_after > 0
            assert service.metrics.shed_queue >= 1
            assert service.metrics.queue_depth_peak <= (
                config.shards * config.queue_depth
            )

    run(main())


def test_flood_smoke_bounded_queues_and_zero_wrong_results():
    """The CI overload smoke: a burst far beyond capacity completes
    (via shedding + resubmission), queues stay bounded, every result
    is right."""

    async def main():
        config = ServiceConfig(
            shards=2, queue_depth=3, rate=60.0, burst=4,
            poll_tick=0.01, heartbeat_interval=0.02,
        )
        async with SimulationService(config) as service:
            jobs = [StubJob(f"flood-{i % 10}") for i in range(30)]
            results = await service.run_jobs(jobs)
            assert [r.to_dict() for r in results] == [
                j.run().to_dict() for j in jobs
            ]
            metrics = service.metrics
            assert metrics.shed > 0, "flood never shed — not a flood"
            assert metrics.queue_depth_peak <= (
                config.shards * config.queue_depth
            )
            dedup = (
                metrics.coalesced + metrics.memory_hits + metrics.cache_hits
            )
            assert dedup > 0, "duplicates never deduplicated"
            # 10 distinct jobs ran; 20 duplicates were absorbed.
            assert metrics.completed == 10

    run(main())


def test_shed_submission_was_not_queued():
    async def main():
        config = ServiceConfig(
            shards=1, rate=5.0, burst=1, poll_tick=0.01,
            heartbeat_interval=0.02,
        )
        async with SimulationService(config) as service:
            service.submit(StubJob("kept"))
            with pytest.raises(ServiceOverloadError):
                service.submit(StubJob("shed"))
            assert service.metrics.admitted == 1
            assert service.metrics.submitted == 2
            # The shed job is unknown to the service: no entry, no ticket.
            assert service.status("anything-0") is None

    run(main())
