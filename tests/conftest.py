"""Shared fixtures: small deterministic scenes, BVHs and traces."""

import os

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.scene.generators import grid_mesh, merge_meshes, scatter_mesh
from repro.scene.scene import Scene
from repro.trace.path import generate_workload


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Point the runtime result store at a per-session temp directory.

    Keeps the suite hermetic: tests never read results persisted by a
    different (possibly older) checkout under ``~/.cache/repro-sms``,
    and never pollute the user's store — while cache-hit behavior
    *within* a session still works and is testable.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-store"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def small_scene():
    """A few hundred triangles with both structure and clutter."""
    mesh = merge_meshes(
        [
            grid_mesh(6, 6, size=10.0, height_amplitude=0.5, seed=1),
            scatter_mesh(300, bounds_size=8.0, triangle_size=0.4, clusters=4, seed=2),
        ]
    )
    return Scene("small", mesh)


@pytest.fixture(scope="session")
def small_bvh(small_scene):
    """Wide BVH over the small scene (laid out)."""
    return build_bvh(small_scene)


@pytest.fixture(scope="session")
def deep_scene():
    """Overlapping clutter that produces stack depths well beyond 8."""
    mesh = scatter_mesh(
        4000, bounds_size=10.0, triangle_size=0.6, clusters=10, seed=7
    )
    return Scene("deepclutter", mesh)


@pytest.fixture(scope="session")
def deep_bvh(deep_scene):
    """Wide BVH over the deep scene."""
    return build_bvh(deep_scene)


@pytest.fixture(scope="session")
def small_workload(small_bvh):
    """Traces of a tiny path-traced frame over the small scene."""
    return generate_workload(small_bvh, width=8, height=8, max_bounces=2, seed=3)


@pytest.fixture(scope="session")
def deep_workload(deep_bvh):
    """Traces over the deep scene — exercises overflow paths heavily."""
    return generate_workload(deep_bvh, width=10, height=10, max_bounces=2, seed=4)


@pytest.fixture
def rng():
    """Deterministic numpy generator for per-test randomness."""
    return np.random.default_rng(1234)
