"""Property-based equivalence of all traversal algorithms.

Every traversal implementation in the package — per-ray DFS, stackless
restart-trail, the short-stack hybrid, and packet traversal — must agree
on the closest hit for arbitrary scenes and rays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.api import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene
from repro.trace.packet import packet_trace
from repro.trace.restart import restart_trail_trace, short_stack_restart_trace
from repro.trace.tracer import Tracer


@settings(max_examples=30, deadline=None)
@given(
    scene_seed=st.integers(min_value=0, max_value=500),
    ray_seed=st.integers(min_value=0, max_value=500),
    prim_count=st.integers(min_value=2, max_value=120),
    width=st.sampled_from([2, 4, 6]),
    capacity=st.sampled_from([0, 1, 3]),
)
def test_all_traversals_agree(scene_seed, ray_seed, prim_count, width, capacity):
    scene = Scene(
        "fuzz",
        scatter_mesh(prim_count, bounds_size=6.0, triangle_size=0.6,
                     seed=scene_seed),
    )
    bvh = build_bvh(scene, width=width)
    tracer = Tracer(bvh)
    rng = np.random.default_rng(ray_seed)
    rays = [
        Ray(origin=rng.uniform(-8, 8, 3), direction=normalize(rng.normal(size=3)))
        for _ in range(4)
    ]
    packet = packet_trace(bvh, rays)
    for i, ray in enumerate(rays):
        expected = tracer.trace(ray).hit_prim
        assert restart_trail_trace(bvh, ray).hit_prim == expected
        assert (
            short_stack_restart_trace(bvh, ray, stack_entries=capacity).hit_prim
            == expected
        )
        assert packet.hit_prims[i] == expected
