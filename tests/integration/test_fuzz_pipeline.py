"""Randomized whole-pipeline fuzzing.

Generates random small scenes and random stack configurations, then runs
the full pipeline with pop verification on — any LIFO corruption, BVH
inconsistency or trace imbalance fails loudly.  Complements the
hypothesis tests, which fuzz each layer in isolation.
"""

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.bvh.validate import validate_wide
from repro.core.api import time_traces
from repro.gpu.config import GPUConfig
from repro.scene.generators import (
    blob_mesh,
    box_mesh,
    grid_mesh,
    merge_meshes,
    scatter_mesh,
    sliver_mesh,
)
from repro.scene.scene import Scene
from repro.trace.path import generate_workload

GENERATOR_POOL = [
    lambda rng: scatter_mesh(
        int(rng.integers(20, 400)),
        bounds_size=float(rng.uniform(4, 16)),
        triangle_size=float(rng.uniform(0.05, 0.8)),
        clusters=int(rng.integers(1, 8)),
        seed=int(rng.integers(0, 10**6)),
    ),
    lambda rng: grid_mesh(
        int(rng.integers(2, 12)),
        int(rng.integers(2, 12)),
        height_amplitude=float(rng.uniform(0, 2)),
        seed=int(rng.integers(0, 10**6)),
    ),
    lambda rng: blob_mesh(
        rng.uniform(-4, 4, 3),
        float(rng.uniform(0.5, 3.0)),
        subdivisions=int(rng.integers(1, 3)),
        bumpiness=float(rng.uniform(0, 0.4)),
        seed=int(rng.integers(0, 10**6)),
    ),
    lambda rng: sliver_mesh(
        int(rng.integers(5, 80)),
        length=float(rng.uniform(2, 10)),
        seed=int(rng.integers(0, 10**6)),
    ),
    lambda rng: box_mesh(rng.uniform(-4, 4, 3), rng.uniform(0.5, 3.0, 3)),
]


def random_scene(rng) -> Scene:
    parts = [
        GENERATOR_POOL[int(rng.integers(0, len(GENERATOR_POOL)))](rng)
        for _ in range(int(rng.integers(1, 4)))
    ]
    return Scene(f"fuzz{int(rng.integers(0, 10**6))}", merge_meshes(parts))


def random_config(rng) -> GPUConfig:
    rb = int(rng.choice([1, 2, 3, 4, 8]))
    sh = int(rng.choice([0, 1, 2, 4, 8]))
    if sh == 0:
        return GPUConfig(rb_stack_entries=rb, sh_stack_entries=0)
    return GPUConfig(
        rb_stack_entries=rb,
        sh_stack_entries=sh,
        skewed_bank_access=bool(rng.integers(0, 2)),
        intra_warp_realloc=bool(rng.integers(0, 2)),
        max_borrows=int(rng.integers(1, 6)),
        max_flushes=int(rng.integers(1, 4)),
    )


@pytest.mark.parametrize("seed", range(12))
def test_random_pipeline(seed):
    rng = np.random.default_rng(1000 + seed)
    scene = random_scene(rng)
    bvh = build_bvh(
        scene,
        width=int(rng.choice([2, 4, 6, 8])),
        max_leaf_size=int(rng.integers(1, 6)),
    )
    validate_wide(bvh)
    workload = generate_workload(
        bvh,
        width=int(rng.integers(4, 9)),
        height=int(rng.integers(4, 9)),
        max_bounces=int(rng.integers(0, 3)),
        seed=int(rng.integers(0, 10**6)),
    )
    for trace in workload.all_traces:
        trace.validate()
    config = random_config(rng)
    result = time_traces(
        workload.all_traces, config, scene_name=scene.name, verify_pops=True
    )
    assert result.cycles > 0
    assert result.counters.instructions > 0
