"""End-to-end inter-warp reallocation through the full simulator."""

import pytest

from repro.core.api import time_traces
from repro.core.presets import named_config, sms_config


def test_interwarp_simulates_with_pop_verification(deep_workload):
    traces = deep_workload.all_traces
    result = time_traces(
        traces,
        named_config("RB_2+SH_2+SK+RA+IW"),
        scene_name="deep",
        verify_pops=True,
    )
    assert result.cycles > 0
    assert result.label == "RB_2+SH_2+SK+RA+IW"


def test_interwarp_never_slower_when_starved(deep_workload):
    """With tiny stacks, unit-wide borrowing should help (or tie)."""
    traces = deep_workload.all_traces
    intra = time_traces(
        traces, sms_config(rb_entries=2, sh_entries=2), scene_name="deep"
    )
    inter = time_traces(
        traces,
        sms_config(rb_entries=2, sh_entries=2, inter_warp=True),
        scene_name="deep",
    )
    assert inter.ipc >= intra.ipc * 0.98
    # Inter-warp borrowing reduces global stack traffic.
    assert inter.counters.stack_global_ops <= intra.counters.stack_global_ops


def test_interwarp_instructions_invariant(deep_workload):
    traces = deep_workload.all_traces
    intra = time_traces(traces, sms_config(), scene_name="deep")
    inter = time_traces(
        traces, sms_config(inter_warp=True), scene_name="deep"
    )
    assert intra.counters.instructions == inter.counters.instructions


def test_interwarp_borrows_counted(deep_workload):
    traces = deep_workload.all_traces
    result = time_traces(
        traces,
        sms_config(rb_entries=1, sh_entries=1, inter_warp=True),
        scene_name="deep",
        verify_pops=True,
    )
    assert result.counters.borrows > 0
