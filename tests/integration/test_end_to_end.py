"""Cross-layer integration: scene -> BVH -> trace -> timing, with the
timing model's pop verification acting as a whole-pipeline checksum."""

import pytest

from repro import named_config, simulate, time_traces, trace_scene
from repro.bvh.api import build_bvh
from repro.bvh.validate import validate_wide
from repro.core.api import time_traces as time_traces_api
from repro.trace.depth import depth_statistics
from repro.workloads.lumibench import load_scene


@pytest.mark.parametrize("scene_name", ["SHIP", "BUNNY", "SPNZA"])
def test_scene_to_ipc_pipeline(scene_name):
    scene = load_scene(scene_name)
    bvh = build_bvh(scene)
    validate_wide(bvh)
    workload = trace_scene(scene, width=8, height=8, max_bounces=1, bvh=bvh)
    for trace in workload.all_traces:
        trace.validate()
    # verify_pops=True makes the timing run assert LIFO order end to end.
    result = time_traces(
        workload.all_traces, named_config("RB_2+SH_2+SK+RA"),
        scene_name=scene_name, verify_pops=True,
    )
    assert result.ipc > 0


def test_pop_verification_across_every_architecture(deep_workload):
    for name in ["RB_2", "RB_8", "RB_FULL", "RB_2+SH_2", "RB_2+SH_2+SK",
                 "RB_2+SH_2+SK+RA", "RB_8+SH_8+SK+RA"]:
        result = time_traces_api(
            deep_workload.all_traces, named_config(name),
            scene_name="deep", verify_pops=True,
        )
        assert result.cycles > 0


def test_simulate_matches_two_phase(small_scene):
    combined = simulate(small_scene, named_config("RB_8"), width=6, height=6)
    workload = trace_scene(small_scene, width=6, height=6)
    staged = time_traces_api(
        workload.all_traces, named_config("RB_8"), scene_name="small"
    )
    assert combined.cycles == staged.cycles
    assert combined.counters.as_dict() == staged.counters.as_dict()


def test_depth_stats_attached_to_results(small_scene):
    result = simulate(small_scene, width=6, height=6)
    workload = trace_scene(small_scene, width=6, height=6)
    expected = depth_statistics(workload.all_traces)
    assert result.depth_stats.max_depth == expected.max_depth
    assert result.depth_stats.sample_count == expected.sample_count


def test_hits_independent_of_timing_config(small_scene):
    """Timing configuration must never change functional results."""
    workload_a = trace_scene(small_scene, width=6, height=6, seed=1)
    workload_b = trace_scene(small_scene, width=6, height=6, seed=1)
    hits_a = [t.hit_prim for t in workload_a.all_traces]
    hits_b = [t.hit_prim for t in workload_b.all_traces]
    assert hits_a == hits_b
