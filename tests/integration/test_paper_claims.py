"""End-to-end checks of the paper's qualitative claims.

Run at moderate scale over a few representative scenes, these assert the
*shape* of the paper's results: orderings and directions, not absolute
numbers (see EXPERIMENTS.md for the full-scale quantitative comparison).
"""

import pytest

from repro.core.presets import (
    baseline_config,
    full_stack_config,
    sms_config,
)
from repro.experiments.common import WorkloadCache, mean_row, normalized_ipc
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.5),
        scene_names=["CRNVL", "PARTY", "SHIP"],
    )


@pytest.fixture(scope="module")
def ladder(cache):
    configs = [
        baseline_config(rb_entries=2),
        baseline_config(rb_entries=4),
        baseline_config(rb_entries=8),
        baseline_config(rb_entries=16),
        sms_config(skewed=False, realloc=False),
        sms_config(skewed=True, realloc=False),
        sms_config(skewed=True, realloc=True),
        sms_config(rb_entries=2),
        full_stack_config(),
    ]
    results = cache.sweep(configs)
    return results, mean_row(normalized_ipc(results, "RB_8"))


def test_smaller_stacks_are_slower(ladder):
    """Fig. 6a's ordering: RB_2 < RB_4 < RB_8 < RB_16."""
    _, means = ladder
    assert means["RB_2"] < means["RB_4"] < 1.0 < means["RB_16"]


def test_sms_improves_over_baseline(ladder):
    """Fig. 13's headline: the SH stack lifts IPC over RB_8."""
    _, means = ladder
    assert means["RB_8+SH_8"] > 1.0


def test_reallocation_adds_on_top(ladder):
    """+RA beats plain +SK (Fig. 13's final bar)."""
    _, means = ladder
    assert means["RB_8+SH_8+SK+RA"] >= means["RB_8+SH_8+SK"] - 0.005


def test_sms_close_to_full_stack(ladder):
    """The paper's key claim: SMS approaches the impractical full stack."""
    _, means = ladder
    gap = means["RB_FULL"] - means["RB_8+SH_8+SK+RA"]
    total_headroom = means["RB_FULL"] - 1.0
    assert gap <= 0.5 * total_headroom


def test_tiny_rb_with_sms_beats_baseline(ladder):
    """Fig. 15a: RB_2 + SMS outperforms the RB_8 baseline."""
    _, means = ladder
    assert means["RB_2+SH_8+SK+RA"] > 1.0


def test_offchip_tracks_spills(ladder):
    """Fig. 15b: RB_2 inflates off-chip traffic; SMS removes it."""
    results, _ = ladder
    for scene in results:
        base = results[scene]["RB_8"].offchip_accesses
        assert results[scene]["RB_2"].offchip_accesses > base
        assert results[scene]["RB_8+SH_8+SK+RA"].offchip_accesses < base


def test_sms_moves_traffic_to_shared_memory(ladder):
    """Fig. 7's mechanism: SH stack absorbs what went to global memory."""
    results, _ = ladder
    for scene in results:
        base = results[scene]["RB_8"].counters
        sms = results[scene]["RB_8+SH_8"].counters
        assert base.stack_shared_ops == 0
        assert sms.stack_shared_ops > 0
        assert sms.stack_global_ops < base.stack_global_ops


def test_skew_reduces_bank_conflict_delay(ladder):
    """Fig. 14's direction, aggregated over the scenes."""
    results, _ = ladder
    before = sum(
        results[s]["RB_8+SH_8"].counters.bank_conflict_delay_cycles
        for s in results
    )
    after = sum(
        results[s]["RB_8+SH_8+SK"].counters.bank_conflict_delay_cycles
        for s in results
    )
    assert after < before


def test_full_stack_is_upper_bound(ladder):
    """No configuration beats RB_FULL (it does strictly less work)."""
    _, means = ladder
    best_other = max(v for k, v in means.items() if k != "RB_FULL")
    assert means["RB_FULL"] >= best_other - 0.01


def test_instructions_identical_across_ladder(ladder):
    results, _ = ladder
    for scene in results:
        counts = {r.counters.instructions for r in results[scene].values()}
        assert len(counts) == 1


def test_realloc_borrows_and_reduces_global_ops(ladder):
    results, _ = ladder
    for scene in results:
        with_ra = results[scene]["RB_8+SH_8+SK+RA"].counters
        without = results[scene]["RB_8+SH_8+SK"].counters
        assert with_ra.stack_global_ops <= without.stack_global_ops
    total_borrows = sum(
        results[s]["RB_8+SH_8+SK+RA"].counters.borrows for s in results
    )
    assert total_borrows > 0
