"""Experiment plumbing tests (small scenes, scaled resolution)."""

import pytest

from repro.core.presets import baseline_config, full_stack_config
from repro.experiments.common import (
    WorkloadCache,
    geomean,
    mean_row,
    normalized_ipc,
)
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def tiny_cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.25),
        scene_names=["SHIP", "REF"],
    )


def test_geomean_basic():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([3.0]) == 3.0


def test_cache_names(tiny_cache):
    assert tiny_cache.names == ["SHIP", "REF"]


def test_default_cache_covers_suite():
    assert len(WorkloadCache().names) == 16


def test_traced_is_cached(tiny_cache):
    a = tiny_cache.traced("SHIP")
    b = tiny_cache.traced("ship")
    assert a is b
    assert a.traces
    assert a.bvh_stats.triangle_count == a.scene.triangle_count


def test_simulate_one(tiny_cache):
    result = tiny_cache.simulate("SHIP", baseline_config())
    assert result.ipc > 0
    assert result.scene_name == "SHIP"


def test_sweep_shape(tiny_cache):
    results = tiny_cache.sweep([baseline_config(), full_stack_config()])
    assert set(results) == {"SHIP", "REF"}
    assert set(results["SHIP"]) == {"RB_8", "RB_FULL"}


def test_sweep_disambiguates_duplicate_labels(tiny_cache):
    results = tiny_cache.sweep([baseline_config(), baseline_config()])
    assert len(results["SHIP"]) == 2


def test_normalized_ipc_baseline_is_one(tiny_cache):
    results = tiny_cache.sweep([baseline_config(), full_stack_config()])
    norm = normalized_ipc(results, "RB_8")
    for scene in norm:
        assert norm[scene]["RB_8"] == pytest.approx(1.0)
        assert norm[scene]["RB_FULL"] >= 0.9


def test_mean_row(tiny_cache):
    results = tiny_cache.sweep([baseline_config(), full_stack_config()])
    means = mean_row(normalized_ipc(results, "RB_8"))
    assert means["RB_8"] == pytest.approx(1.0)
    assert mean_row({}) == {}
