"""Energy study driver tests."""

import pytest

from repro.experiments import energy_study
from repro.experiments.common import WorkloadCache
from repro.experiments.runner import run_experiment
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.3),
        scene_names=["SHIP", "CRNVL"],
    )


def test_energy_study_runs(cache):
    result = energy_study.run(cache)
    assert result.total_energy["RB_8"] == pytest.approx(1.0)
    # SMS cuts energy (spill DRAM traffic removed, runtime shorter).
    assert result.total_energy["RB_8+SH_8+SK+RA"] < 1.0
    assert result.total_energy["RB_FULL"] <= result.total_energy["RB_8"]


def test_stack_share_drops_with_sms(cache):
    result = energy_study.run(cache)
    assert (
        result.stack_energy_share["RB_8+SH_8+SK+RA"]
        < result.stack_energy_share["RB_8"]
    )
    assert result.stack_energy_share["RB_FULL"] == pytest.approx(0.0)


def test_render(cache):
    text = energy_study.render(energy_study.run(cache))
    assert "Energy study" in text
    assert "RB_FULL" in text


def test_runner_exposes_energy(cache):
    text = run_experiment("energy", cache)
    assert "Energy study" in text
