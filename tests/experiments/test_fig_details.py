"""Deeper assertions on experiment driver internals."""

import pytest

from repro.experiments import (
    fig4_stack_depths,
    fig5_depth_distribution,
    fig10_thread_depths,
    fig14_skewed,
)
from repro.experiments.common import WorkloadCache
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.4),
        scene_names=["PARTY", "SHIP"],
    )


def test_fig10_picks_busiest_warps(cache):
    """Warps whose rays all miss (empty profiles) must not be selected."""
    result = fig10_thread_depths.run(cache, scene="PARTY", warps=2)
    for warp in result.warp_series:
        total = sum(len(lane) for lane in warp)
        assert total > 0
    # Both of the paper's imbalance observations must be measurable.
    assert 0 < result.finish_spread < 1.0
    assert 0 < result.peak_spread < 1.0


def test_fig10_warp_count_respected(cache):
    result = fig10_thread_depths.run(cache, scene="SHIP", warps=1)
    assert len(result.warp_series) == 1


def test_fig4_overall_consistent_with_per_scene(cache):
    result = fig4_stack_depths.run(cache)
    assert result.overall.max_depth == max(
        stats.max_depth for stats in result.per_scene.values()
    )
    per_scene_avgs = [s.avg_depth for s in result.per_scene.values()]
    assert min(per_scene_avgs) <= result.overall.avg_depth <= max(per_scene_avgs)


def test_fig5_fractions_sum_to_one(cache):
    result = fig5_depth_distribution.run(cache)
    assert sum(result.fractions) == pytest.approx(1.0)
    for scene_fractions in result.per_scene_fractions.values():
        assert sum(scene_fractions) == pytest.approx(1.0)


def test_fig5_histogram_counts_positive(cache):
    result = fig5_depth_distribution.run(cache)
    assert all(count > 0 for count in result.histogram.values())


def test_fig14_reduction_uses_totals():
    """Scenes with trivially small delays must not dominate the mean."""
    result = fig14_skewed.Fig14Result(
        delay_no_skew={"A": 10000, "B": 4},
        delay_skew={"A": 8000, "B": 0},
    )
    # Totals-based: (8000+0)/(10004) ~ 0.2, not the 60% a per-scene
    # average of (20%, 100%) would claim.
    assert result.reduction == pytest.approx(1 - 8000 / 10004)


def test_fig14_zero_delays():
    result = fig14_skewed.Fig14Result(delay_no_skew={}, delay_skew={})
    assert result.reduction == 0.0
