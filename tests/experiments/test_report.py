"""Report rendering tests."""

from repro.experiments.report import (
    DEFAULT_PRECISION,
    format_bar_series,
    format_table,
    format_value,
)


def test_table_alignment():
    text = format_table(["a", "bb"], [(1, 2.5), ("xyz", 3)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")
    assert "2.500" in text


def test_format_value_rounds_floats_only():
    assert format_value(2.5) == f"{2.5:.{DEFAULT_PRECISION}f}"
    assert format_value(2.5, precision=1) == "2.5"
    assert format_value(0.123456, precision=4) == "0.1235"
    assert format_value(7) == "7"            # ints pass through unrounded
    assert format_value(7, precision=1) == "7"
    assert format_value("-") == "-"          # placeholder cells untouched
    assert format_value(True) == "True"      # bool is not float


def test_table_per_column_precision():
    text = format_table(
        ["name", "kb", "ratio"],
        [("x", 8.1919, 1.23456)],
        precision=(None, 1, 3),
    )
    row = text.splitlines()[-1]
    assert "8.2" in row
    assert "1.235" in row
    assert "8.1919" not in row


def test_table_precision_none_entries_use_default():
    text = format_table(["v"], [(2.5,)], precision=(None,))
    assert f"{2.5:.{DEFAULT_PRECISION}f}" in text


def test_table_short_precision_covers_leading_columns():
    # One precision entry, two columns: the second falls back to default.
    text = format_table(["a", "b"], [(1.0, 2.0)], precision=(1,))
    row = text.splitlines()[-1]
    assert "1.0" in row
    assert f"{2.0:.{DEFAULT_PRECISION}f}" in row


def test_table_columns_align_with_mixed_widths():
    text = format_table(
        ["strategy", "IPC"],
        [("sms", 1.2), ("a-much-longer-name", 10.25)],
        precision=(None, 3),
    )
    header, rule, row1, row2 = text.splitlines()
    # Every line is padded to the same column grid.
    assert header.index("IPC") == row1.index("1.200")
    assert row1.index("1.200") == row2.index("10.250")
    assert len(rule) >= len("a-much-longer-name")


def test_table_mixed_type_column_formats_consistently():
    # A float ratio column with a "-" placeholder row (the compare
    # engine's base row) renders without type errors or drift.
    text = format_table(
        ["s", "vs base"],
        [("base", "-"), ("other", 1.0345)],
        precision=(None, 3),
    )
    assert "-" in text
    assert "1.034" in text or "1.035" in text


def test_table_title():
    text = format_table(["x"], [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_table_widths_accommodate_long_cells():
    text = format_table(["h"], [("a-very-long-cell",)])
    header, rule, row = text.splitlines()
    assert len(rule) >= len("a-very-long-cell")


def test_bar_series_scales_to_peak():
    text = format_bar_series({"a": 1.0, "b": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_bar_series_title_and_labels():
    text = format_bar_series({"only": 1.0}, title="Bars")
    assert text.splitlines()[0] == "Bars"
    assert "only" in text


def test_bar_series_handles_tiny_values():
    text = format_bar_series({"tiny": 1e-9, "big": 1.0})
    assert "#" in text.splitlines()[0]  # at least one glyph
