"""Report rendering tests."""

from repro.experiments.report import format_bar_series, format_table


def test_table_alignment():
    text = format_table(["a", "bb"], [(1, 2.5), ("xyz", 3)])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].startswith("a")
    assert "2.500" in text


def test_table_title():
    text = format_table(["x"], [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_table_widths_accommodate_long_cells():
    text = format_table(["h"], [("a-very-long-cell",)])
    header, rule, row = text.splitlines()
    assert len(rule) >= len("a-very-long-cell")


def test_bar_series_scales_to_peak():
    text = format_bar_series({"a": 1.0, "b": 2.0}, width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10
    assert lines[0].count("#") == 5


def test_bar_series_title_and_labels():
    text = format_bar_series({"only": 1.0}, title="Bars")
    assert text.splitlines()[0] == "Bars"
    assert "only" in text


def test_bar_series_handles_tiny_values():
    text = format_bar_series({"tiny": 1e-9, "big": 1.0})
    assert "#" in text.splitlines()[0]  # at least one glyph
