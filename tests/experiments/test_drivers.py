"""Experiment driver tests at reduced scale.

Each driver must run end to end and render the rows/series the paper
reports.  Scale is cut aggressively (2 scenes, tiny resolution); the
full-suite runs live in benchmarks/.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import runner
from repro.experiments.common import WorkloadCache
from repro.experiments import (
    fig4_stack_depths,
    fig5_depth_distribution,
    fig6_stack_l1d,
    fig8_sh_configs,
    fig10_thread_depths,
    fig13_sms_ipc,
    fig14_skewed,
    fig15_rb_sizes,
    table1,
    table2,
)
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.3),
        scene_names=["SHIP", "CRNVL"],
    )


def test_table1_renders():
    text = table1.render(table1.run())
    assert "Table I" in text
    assert "GTO" in text


def test_table2_renders(cache):
    result = table2.run(cache)
    text = table2.render(result)
    assert "SHIP" in text and "CRNVL" in text
    assert result.stats["SHIP"].triangle_count > 0


def test_fig4(cache):
    result = fig4_stack_depths.run(cache)
    assert set(result.per_scene) == {"SHIP", "CRNVL"}
    assert result.overall.max_depth >= max(
        s.max_depth for s in result.per_scene.values()
    ) - 1
    text = fig4_stack_depths.render(result)
    assert "Fig. 4" in text and "ALL" in text


def test_fig5(cache):
    result = fig5_depth_distribution.run(cache)
    assert sum(result.fractions) == pytest.approx(1.0)
    assert "Fig. 5" in fig5_depth_distribution.render(result)


def test_fig6(cache):
    result = fig6_stack_l1d.run(cache)
    assert result.stack_sweep["RB_8"] == pytest.approx(1.0)
    assert result.l1d_sweep["x1.0"] == pytest.approx(1.0)
    # Bigger stacks and bigger L1D never hurt.
    assert result.stack_sweep["RB_32"] >= result.stack_sweep["RB_4"]
    assert result.l1d_sweep["x4.0"] >= result.l1d_sweep["x0.25"]
    assert "Fig. 6a" in fig6_stack_l1d.render(result)


def test_fig8(cache):
    result = fig8_sh_configs.run(cache)
    assert result.means["RB_8"] == pytest.approx(1.0)
    assert result.means["RB_8+SH_16"] >= result.means["RB_8+SH_4"] - 0.02
    assert result.shared_memory_bytes["RB_8+SH_8"] == 8 * 1024
    assert "Fig. 8" in fig8_sh_configs.render(result)


def test_fig10(cache):
    result = fig10_thread_depths.run(cache, scene="SHIP", warps=1)
    assert result.warp_series
    assert 0 < result.finish_spread <= 1.0
    text = fig10_thread_depths.render(result)
    assert "warp 0" in text


def test_fig13(cache):
    result = fig13_sms_ipc.run(cache)
    assert result.means["RB_8"] == pytest.approx(1.0)
    assert result.means["RB_8+SH_8+SK+RA"] >= result.means["RB_8+SH_8"] - 0.02
    assert "MEAN" in fig13_sms_ipc.render(result)


def test_fig14(cache):
    result = fig14_skewed.run(cache)
    assert set(result.delay_no_skew) == {"SHIP", "CRNVL"}
    assert "Fig. 14" in fig14_skewed.render(result)


def test_fig15(cache):
    result = fig15_rb_sizes.run(cache)
    assert result.ipc_means["RB_8"] == pytest.approx(1.0)
    assert result.offchip_means["RB_2"] > result.offchip_means["RB_16"]
    assert result.ipc_means["RB_2+SH_8+SK+RA"] > result.ipc_means["RB_2"]
    assert "Fig. 15" in fig15_rb_sizes.render(result)


def test_runner_unknown_raises():
    with pytest.raises(ExperimentError):
        runner.run_experiment("fig99")


def test_runner_runs_named(cache):
    text = runner.run_experiment("fig4", cache)
    assert "Fig. 4" in text


def test_runner_registry_covers_all_figures():
    assert set(runner.EXPERIMENTS) == {
        "table1", "table2", "fig4", "fig5", "fig6", "fig8",
        "fig10", "fig13", "fig14", "fig15",
    }
