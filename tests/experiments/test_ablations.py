"""Ablation study tests at reduced scale."""

import pytest

from repro.experiments import ablations
from repro.experiments.common import WorkloadCache
from repro.workloads.params import WorkloadParams


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(
        params=WorkloadParams().scaled(0.3),
        scene_names=["SHIP", "CRNVL"],
    )


def test_borrow_limit_sweep(cache):
    result = ablations.borrow_limit_sweep(cache, limits=(0, 1, 4))
    assert set(result.means) == {"borrows=0", "borrows=1", "borrows=4"}
    # More borrowing never hurts (monotone within tolerance).
    assert result.means["borrows=4"] >= result.means["borrows=0"] - 0.01
    text = ablations.render_sweep(result, "borrow sweep")
    assert "borrows=4" in text


def test_flush_limit_sweep(cache):
    result = ablations.flush_limit_sweep(cache, limits=(0, 3))
    assert set(result.means) == {"flushes=0", "flushes=3"}
    for value in result.means.values():
        assert value > 0.9


def test_skew_scaling(cache):
    reductions = ablations.skew_scaling(cache, sizes=(4, 8))
    assert set(reductions) == {"SH_4", "SH_8"}
    for value in reductions.values():
        assert -1.0 <= value <= 1.0


def test_spill_policy_study(cache):
    means = ablations.spill_policy_study(cache)
    assert means["uncached"] == pytest.approx(1.0)
    # Cacheable spills can only help the baseline.
    assert means["l2"] >= means["uncached"] - 0.01
    assert means["l1"] >= means["l2"] - 0.01


def test_stackless_comparison(cache):
    result = ablations.stackless_comparison(cache, rays_per_scene=32)
    for scene, overhead in result.overhead.items():
        assert overhead >= 1.0  # restarts never reduce visits
    assert any(r > 0 for r in result.restarts_per_ray.values())
