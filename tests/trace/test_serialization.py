"""Trace serialization tests."""

import pytest

from repro.core.api import time_traces
from repro.core.presets import sms_config
from repro.errors import TraversalError
from repro.trace.serialization import (
    FORMAT_VERSION,
    load_traces,
    save_traces,
    traces_from_dict,
    traces_to_dict,
)


def test_roundtrip_preserves_everything(small_workload, tmp_path):
    original = small_workload.all_traces
    path = save_traces(original, tmp_path / "traces.json")
    loaded = load_traces(path)
    assert len(loaded) == len(original)
    for a, b in zip(original, loaded):
        assert a.ray_id == b.ray_id
        assert a.pixel == b.pixel
        assert a.kind == b.kind
        assert a.hit_prim == b.hit_prim
        assert len(a.steps) == len(b.steps)
        for step_a, step_b in zip(a.steps, b.steps):
            assert step_a.address == step_b.address
            assert step_a.size_bytes == step_b.size_bytes
            assert step_a.kind == step_b.kind
            assert step_a.tests == step_b.tests
            assert step_a.pushes == step_b.pushes
            assert step_a.popped == step_b.popped


def test_loaded_traces_simulate_identically(small_workload, tmp_path):
    original = small_workload.all_traces
    loaded = load_traces(save_traces(original, tmp_path / "t.json"))
    config = sms_config(rb_entries=2, sh_entries=2)
    a = time_traces(original, config, verify_pops=True)
    b = time_traces(loaded, config, verify_pops=True)
    assert a.cycles == b.cycles
    assert a.counters.as_dict() == b.counters.as_dict()


def test_miss_hit_t_roundtrips_as_inf(small_workload, tmp_path):
    original = small_workload.all_traces
    misses = [t for t in original if not t.hit]
    assert misses, "fixture should include missing rays"
    loaded = load_traces(save_traces(original, tmp_path / "t.json"))
    for a, b in zip(original, loaded):
        if not a.hit:
            assert b.hit_t == float("inf")


def test_version_check():
    data = traces_to_dict([])
    assert data["version"] == FORMAT_VERSION
    data["version"] = 999
    with pytest.raises(TraversalError):
        traces_from_dict(data)


def test_corrupt_stream_rejected(small_workload):
    popping = next(
        t for t in small_workload.all_traces
        if any(step.popped for step in t.steps)
    )
    data = traces_to_dict([popping])
    record = data["traces"][0]
    # Make the stream pop more than was pushed.
    record["pushes"] = [[] for _ in record["pushes"]]
    with pytest.raises(TraversalError):
        traces_from_dict(data)
