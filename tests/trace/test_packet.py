"""Packet traversal tests."""

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize, vec3
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene
from repro.trace.packet import packet_trace
from repro.trace.tracer import Tracer


@pytest.fixture(scope="module")
def bvh():
    return build_bvh(
        Scene("clutter", scatter_mesh(300, bounds_size=8.0,
                                      triangle_size=0.5, seed=81))
    )


def coherent_rays(count):
    """Parallel rays through a small window — a primary-like packet."""
    return [
        Ray(origin=vec3(-0.5 + 0.05 * i, 0.3, 12.0), direction=vec3(0, 0, -1))
        for i in range(count)
    ]


def incoherent_rays(count, seed=82):
    rng = np.random.default_rng(seed)
    return [
        Ray(origin=rng.uniform(-6, 6, 3), direction=normalize(rng.normal(size=3)))
        for _ in range(count)
    ]


def test_hits_match_per_ray_traversal(bvh):
    tracer = Tracer(bvh)
    for rays in (coherent_rays(8), incoherent_rays(8)):
        packet = packet_trace(bvh, rays)
        for i, ray in enumerate(rays):
            solo = tracer.trace(ray)
            assert packet.hit_prims[i] == solo.hit_prim
            if solo.hit:
                assert packet.hit_ts[i] == pytest.approx(solo.hit_t)


def test_single_ray_packet_equals_solo(bvh):
    ray = incoherent_rays(1)[0]
    packet = packet_trace(bvh, [ray])
    solo = Tracer(bvh).trace(ray)
    assert packet.hit_prims[0] == solo.hit_prim


def test_shared_stack_amortizes_on_coherent_rays(bvh):
    """One group stack pushes far less than 8 per-ray stacks combined."""
    rays = coherent_rays(8)
    packet = packet_trace(bvh, rays)
    tracer = Tracer(bvh)
    solo_pushes = sum(
        sum(len(step.pushes) for step in tracer.trace(ray).trace.steps)
        for ray in rays
    )
    assert packet.stack_pushes < solo_pushes


def test_group_visits_union_of_paths(bvh):
    """Node visits for the group are at most the sum of solo visits but
    at least the maximum."""
    rays = incoherent_rays(6)
    packet = packet_trace(bvh, rays)
    tracer = Tracer(bvh)
    solo_visits = [tracer.trace(ray).trace.step_count for ray in rays]
    assert packet.node_visits <= sum(solo_visits)
    assert packet.node_visits >= max(solo_visits)


def test_incoherent_group_wastes_tests(bvh):
    """The paper's criticism: divergent packets drag every ray through
    the union of paths, inflating per-ray test counts."""
    coherent = packet_trace(bvh, coherent_rays(8))
    incoherent = packet_trace(bvh, incoherent_rays(8))
    coherent_tests_per_visit = coherent.ray_box_tests / coherent.node_visits
    incoherent_tests_per_visit = incoherent.ray_box_tests / incoherent.node_visits
    # Per node visit the work is similar, but the incoherent group visits
    # many more nodes overall for the same ray count.
    assert incoherent.node_visits > coherent.node_visits
    assert coherent_tests_per_visit == pytest.approx(
        incoherent_tests_per_visit, rel=0.5
    )


def test_all_missing_packet(bvh):
    rays = [
        Ray(origin=vec3(100, 100, 100), direction=vec3(0, 1, 0))
        for _ in range(4)
    ]
    packet = packet_trace(bvh, rays)
    assert packet.hit_prims == [-1] * 4
    assert all(t == float("inf") for t in packet.hit_ts)
    assert packet.node_visits >= 1
