"""Path-traced workload generation tests."""

import pytest

from repro.trace.events import RayKind
from repro.trace.path import generate_workload


def test_primary_wave_covers_pixels(small_bvh):
    workload = generate_workload(small_bvh, width=6, height=5, max_bounces=0)
    assert len(workload.waves) == 1
    primaries = workload.waves[0]
    assert len(primaries) == 30
    assert all(t.kind is RayKind.PRIMARY for t in primaries)
    assert [t.pixel for t in primaries] == list(range(30))


def test_spp_multiplies_primaries(small_bvh):
    one = generate_workload(small_bvh, width=4, height=4, spp=1, max_bounces=0)
    two = generate_workload(small_bvh, width=4, height=4, spp=2, max_bounces=0)
    assert len(two.waves[0]) == 2 * len(one.waves[0])


def test_bounces_add_waves(small_bvh):
    flat = generate_workload(small_bvh, width=6, height=6, max_bounces=0)
    deep = generate_workload(small_bvh, width=6, height=6, max_bounces=2)
    assert len(deep.waves) > len(flat.waves)


def test_shadow_and_bounce_waves_follow_hits(small_bvh):
    workload = generate_workload(small_bvh, width=8, height=8, max_bounces=1)
    hit_count = sum(1 for t in workload.waves[0] if t.hit)
    assert hit_count > 0
    kinds = [wave[0].kind for wave in workload.waves[1:]]
    assert RayKind.SHADOW in kinds
    assert RayKind.BOUNCE in kinds
    shadow_wave = next(w for w in workload.waves[1:] if w[0].kind is RayKind.SHADOW)
    assert len(shadow_wave) <= hit_count


def test_ray_ids_unique(small_bvh):
    workload = generate_workload(small_bvh, width=6, height=6, max_bounces=2)
    ids = [t.ray_id for t in workload.all_traces]
    assert len(set(ids)) == len(ids)


def test_total_steps_sums(small_bvh):
    workload = generate_workload(small_bvh, width=4, height=4, max_bounces=1)
    assert workload.total_steps == sum(t.step_count for t in workload.all_traces)


def test_deterministic_across_runs(small_bvh):
    a = generate_workload(small_bvh, width=5, height=5, max_bounces=2, seed=9)
    b = generate_workload(small_bvh, width=5, height=5, max_bounces=2, seed=9)
    assert a.ray_count == b.ray_count
    for ta, tb in zip(a.all_traces, b.all_traces):
        assert ta.hit_prim == tb.hit_prim
        assert [s.address for s in ta.steps] == [s.address for s in tb.steps]


def test_seed_changes_bounce_rays(small_bvh):
    a = generate_workload(small_bvh, width=5, height=5, max_bounces=2, seed=1)
    b = generate_workload(small_bvh, width=5, height=5, max_bounces=2, seed=2)
    # Primary rays identical, bounce directions differ.
    bounce_a = [t for t in a.all_traces if t.kind is RayKind.BOUNCE]
    bounce_b = [t for t in b.all_traces if t.kind is RayKind.BOUNCE]
    if bounce_a and bounce_b:
        same = all(
            [s.address for s in ta.steps] == [s.address for s in tb.steps]
            for ta, tb in zip(bounce_a, bounce_b)
        )
        assert not same


def test_all_traces_validate(small_workload):
    for trace in small_workload.all_traces:
        trace.validate()


def test_workload_metadata(small_bvh):
    workload = generate_workload(small_bvh, width=4, height=3, spp=2, max_bounces=1)
    assert workload.width == 4
    assert workload.height == 3
    assert workload.spp == 2
    assert workload.scene_name == small_bvh.scene.name
