"""Trace event record tests."""

import pytest

from repro.errors import TraversalError
from repro.trace.events import NodeKind, RayKind, RayTrace, Step, total_steps


def step(pushes=(), popped=False, kind=NodeKind.INTERNAL):
    return Step(
        address=0x1000,
        size_bytes=64,
        kind=kind,
        tests=len(pushes) or 1,
        pushes=list(pushes),
        popped=popped,
    )


def make_trace(steps):
    trace = RayTrace(ray_id=0, pixel=0, kind=RayKind.PRIMARY)
    trace.steps = steps
    return trace


def test_depth_profile_records_pushes_and_pops():
    trace = make_trace(
        [
            step(pushes=[1, 2]),          # depth 1, 2
            step(pushes=[3]),             # depth 3
            step(popped=True),            # depth 2
            step(popped=True),            # depth 1
        ]
    )
    assert trace.stack_depth_profile() == [1, 2, 3, 2, 1]


def test_max_stack_depth():
    trace = make_trace([step(pushes=[1, 2, 3]), step(popped=True)])
    assert trace.max_stack_depth() == 3


def test_empty_trace_depth():
    trace = make_trace([])
    assert trace.stack_depth_profile() == []
    assert trace.max_stack_depth() == 0


def test_validate_accepts_balanced():
    make_trace([step(pushes=[1]), step(popped=True)]).validate()


def test_validate_rejects_underflow():
    with pytest.raises(TraversalError):
        make_trace([step(popped=True)]).validate()


def test_hit_property():
    trace = make_trace([])
    assert not trace.hit
    trace.hit_prim = 3
    assert trace.hit


def test_step_count():
    trace = make_trace([step(), step()])
    assert trace.step_count == 2


def test_total_steps_helper():
    traces = [make_trace([step()]), make_trace([step(), step()])]
    assert total_steps(traces) == 3


def test_push_and_pop_in_one_step():
    trace = make_trace([step(pushes=[1, 2], popped=True)])
    assert trace.stack_depth_profile() == [1, 2, 1]
