"""Traversal correctness: the tracer must agree with brute force."""

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.geometry.intersect import ray_triangle_intersect
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize, vec3
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene
from repro.trace.events import NodeKind, RayKind
from repro.trace.tracer import Tracer


@pytest.fixture(scope="module")
def scene():
    return Scene("clutter", scatter_mesh(300, bounds_size=8.0,
                                         triangle_size=0.5, seed=61))


@pytest.fixture(scope="module")
def tracer(scene):
    return Tracer(build_bvh(scene))


def brute_force(scene, ray):
    best_t, best_prim = float("inf"), -1
    for tri in scene.triangles():
        t = ray_triangle_intersect(ray, tri)
        if t is not None and t < best_t:
            best_t, best_prim = t, tri.prim_id
    return best_prim, best_t


def random_rays(count, seed):
    rng = np.random.default_rng(seed)
    rays = []
    for _ in range(count):
        origin = rng.uniform(-10, 10, size=3)
        direction = rng.normal(size=3)
        rays.append(Ray(origin=origin, direction=normalize(direction)))
    return rays


def test_matches_brute_force_on_random_rays(scene, tracer):
    for ray in random_rays(40, seed=62):
        result = tracer.trace(ray)
        prim, t = brute_force(scene, ray)
        assert result.hit_prim == prim
        if prim >= 0:
            assert result.hit_t == pytest.approx(t, rel=1e-9)


def test_miss_reports_no_hit(tracer):
    ray = Ray(origin=vec3(100, 100, 100), direction=vec3(1, 0, 0))
    result = tracer.trace(ray)
    assert not result.hit
    assert result.hit_prim == -1
    assert result.trace.hit_t == float("inf")


def test_trace_events_balanced(scene, tracer):
    for ray in random_rays(20, seed=63):
        result = tracer.trace(ray)
        result.trace.validate()


def test_first_step_is_root(tracer):
    ray = Ray(origin=vec3(0, 0, 20), direction=vec3(0, 0, -1))
    result = tracer.trace(ray)
    assert result.trace.steps[0].address == tracer.bvh.nodes[tracer.bvh.root].address


def test_pushes_reference_real_nodes(tracer):
    for ray in random_rays(10, seed=64):
        trace = tracer.trace(ray).trace
        for step in trace.steps:
            for address in step.pushes:
                tracer.bvh.node_at_address(address)


def test_popped_address_is_next_visit(tracer):
    """The value popped must be the next node visited (LIFO contract)."""
    for ray in random_rays(15, seed=65):
        trace = tracer.trace(ray).trace
        stack = []
        for i, step in enumerate(trace.steps):
            for address in step.pushes:
                stack.append(address)
            if step.popped:
                expected = stack.pop()
                assert trace.steps[i + 1].address == expected


def test_any_hit_stops_early(scene, tracer):
    # Find a ray that hits, then verify any-hit does no more work.
    for ray in random_rays(40, seed=66):
        closest = tracer.trace(ray)
        if closest.hit:
            any_hit = tracer.trace(ray, any_hit=True)
            assert any_hit.hit
            assert any_hit.trace.step_count <= closest.trace.step_count
            break
    else:
        pytest.fail("no hitting ray found")


def test_leaf_steps_count_triangle_tests(tracer):
    ray = Ray(origin=vec3(0, 0, 20), direction=vec3(0, 0, -1))
    trace = tracer.trace(ray).trace
    for step in trace.steps:
        node = tracer.bvh.node_at_address(step.address)
        if step.kind is NodeKind.LEAF:
            assert step.tests == len(node.prim_ids)
        else:
            assert step.tests == node.child_count


def test_ray_metadata_propagates(tracer):
    ray = Ray(origin=vec3(0, 0, 20), direction=vec3(0, 0, -1))
    result = tracer.trace(ray, ray_id=42, pixel=7, kind=RayKind.SHADOW)
    assert result.trace.ray_id == 42
    assert result.trace.pixel == 7
    assert result.trace.kind is RayKind.SHADOW


def test_closest_hit_shrinks_t_max(scene, tracer):
    """Traversal with pruning visits no more nodes than without."""
    for ray in random_rays(5, seed=67):
        result = tracer.trace(ray)
        # Every visited internal node must plausibly intersect the ray
        # interval; weaker but fast sanity: step count bounded by node count.
        assert result.trace.step_count <= tracer.bvh.node_count
