"""Warp-formation ordering tests."""

import pytest

from repro.errors import TraversalError
from repro.trace.events import RayKind, RayTrace
from repro.trace.ordering import reorder_wave_tiled, tiled_pixel_order


def test_tiled_order_is_permutation():
    order = tiled_pixel_order(16, 8)
    assert sorted(order) == list(range(16 * 8))


def test_first_tile_is_8x4_block():
    order = tiled_pixel_order(16, 8, tile_w=8, tile_h=4)
    first_tile = set(order[:32])
    expected = {y * 16 + x for y in range(4) for x in range(8)}
    assert first_tile == expected


def test_partial_tiles_covered():
    order = tiled_pixel_order(10, 5, tile_w=8, tile_h=4)
    assert sorted(order) == list(range(50))


def test_invalid_dims_raise():
    with pytest.raises(TraversalError):
        tiled_pixel_order(0, 8)
    with pytest.raises(TraversalError):
        tiled_pixel_order(8, 8, tile_w=0)


def make_wave(pixels):
    return [
        RayTrace(ray_id=i, pixel=p, kind=RayKind.PRIMARY)
        for i, p in enumerate(pixels)
    ]


def test_reorder_preserves_population():
    wave = make_wave(range(32))
    reordered = reorder_wave_tiled(wave, 8, 4)
    assert sorted(t.ray_id for t in reordered) == list(range(32))


def test_reorder_groups_tiles():
    # 16x8 image: after reordering, the first 32 traces form the first tile.
    wave = make_wave(range(16 * 8))
    reordered = reorder_wave_tiled(wave, 16, 8)
    first = {t.pixel for t in reordered[:32]}
    expected = {y * 16 + x for y in range(4) for x in range(8)}
    assert first == expected


def test_reorder_keeps_duplicate_pixels_in_order():
    wave = make_wave([5, 5, 3])
    reordered = reorder_wave_tiled(wave, 8, 4)
    fives = [t.ray_id for t in reordered if t.pixel == 5]
    assert fives == [0, 1]


def test_reorder_appends_out_of_image_pixels():
    wave = make_wave([0, 999])
    reordered = reorder_wave_tiled(wave, 8, 4)
    assert reordered[-1].pixel == 999


def test_warp_formation_study_runs():
    from repro.experiments.ablations import warp_formation_study

    result = warp_formation_study(scene_names=("SHIP",), resolution=12)
    assert "SHIP" in result.ipc_gain
    assert result.fetch_lines_linear["SHIP"] > 0
    assert result.fetch_lines_tiled["SHIP"] > 0
