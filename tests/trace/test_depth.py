"""Depth statistics tests."""

import pytest

from repro.trace.depth import (
    bucket_fractions,
    depth_histogram,
    depth_statistics,
    per_thread_depth_series,
)
from repro.trace.events import NodeKind, RayKind, RayTrace, Step


def trace_with_profile(pushes_pops):
    """Build a trace whose steps push/pop per the given spec."""
    trace = RayTrace(ray_id=0, pixel=0, kind=RayKind.PRIMARY)
    for pushes, popped in pushes_pops:
        trace.steps.append(
            Step(
                address=0,
                size_bytes=32,
                kind=NodeKind.INTERNAL,
                tests=1,
                pushes=[0] * pushes,
                popped=popped,
            )
        )
    return trace


def test_statistics_basic():
    trace = trace_with_profile([(3, False), (0, True), (0, True), (0, True)])
    stats = depth_statistics([trace])
    # Profile: 1,2,3 then 2,1,0.
    assert stats.max_depth == 3
    assert stats.sample_count == 6
    assert stats.avg_depth == pytest.approx((1 + 2 + 3 + 2 + 1 + 0) / 6)
    assert stats.median_depth == pytest.approx(1.5)


def test_statistics_empty():
    stats = depth_statistics([])
    assert stats.max_depth == 0
    assert stats.sample_count == 0


def test_histogram_counts():
    trace = trace_with_profile([(2, False), (0, True)])
    hist = depth_histogram([trace])
    # Profile: 1, 2, 1.
    assert hist == {1: 2, 2: 1}


def test_histogram_caps_at_max_bucket():
    trace = trace_with_profile([(50, False)])
    hist = depth_histogram([trace], max_bucket=10)
    assert max(hist) == 10


def test_bucket_fractions_paper_buckets():
    hist = {4: 81, 12: 17, 20: 2}
    fractions = bucket_fractions(hist)
    assert fractions == pytest.approx([0.81, 0.17, 0.02])


def test_bucket_fractions_ignore_depth_zero():
    hist = {0: 1000, 4: 10}
    fractions = bucket_fractions(hist)
    assert fractions[0] == pytest.approx(1.0)


def test_bucket_fractions_empty():
    assert bucket_fractions({}) == [0.0, 0.0, 0.0]


def test_per_thread_series_shapes():
    traces = [trace_with_profile([(2, False)]), trace_with_profile([(1, True)])]
    series = per_thread_depth_series(traces)
    assert series == [[1, 2], [1, 0]]


def test_statistics_over_workload(small_workload):
    stats = depth_statistics(small_workload.all_traces)
    assert stats.max_depth >= 1
    assert 0 < stats.avg_depth <= stats.max_depth
    assert stats.sample_count > 0
