"""Restart-trail traversal tests: correctness and overhead direction."""

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize, vec3
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene
from repro.trace.restart import restart_trail_trace
from repro.trace.tracer import Tracer


@pytest.fixture(scope="module")
def bvh():
    return build_bvh(
        Scene("clutter", scatter_mesh(400, bounds_size=8.0,
                                      triangle_size=0.5, seed=71))
    )


def random_rays(count, seed):
    rng = np.random.default_rng(seed)
    return [
        Ray(origin=rng.uniform(-10, 10, 3),
            direction=normalize(rng.normal(size=3)))
        for _ in range(count)
    ]


def test_matches_stack_based_closest_hit(bvh):
    tracer = Tracer(bvh)
    for ray in random_rays(50, seed=72):
        stack_result = tracer.trace(ray)
        restart_result = restart_trail_trace(bvh, ray)
        assert restart_result.hit_prim == stack_result.hit_prim
        if stack_result.hit:
            assert restart_result.hit_t == pytest.approx(stack_result.hit_t)


def test_miss_reports_no_hit(bvh):
    ray = Ray(origin=vec3(100, 100, 100), direction=vec3(1, 0, 0))
    result = restart_trail_trace(bvh, ray)
    assert not result.hit
    assert result.hit_t == float("inf")
    assert result.node_visits >= 1


def test_visits_exceed_stack_based(bvh):
    """The stackless trade-off: restarts cost extra node visits."""
    tracer = Tracer(bvh)
    dfs = 0
    stackless = 0
    for ray in random_rays(40, seed=73):
        dfs += tracer.trace(ray).trace.step_count
        stackless += restart_trail_trace(bvh, ray).node_visits
    assert stackless > dfs


def test_restart_count_positive_on_hits(bvh):
    hit_rays = [
        ray for ray in random_rays(40, seed=74)
        if restart_trail_trace(bvh, ray).hit
    ]
    assert hit_rays
    assert any(
        restart_trail_trace(bvh, ray).restarts > 0 for ray in hit_rays
    )


def test_trail_depth_bounded_by_tree_depth(bvh):
    for ray in random_rays(20, seed=75):
        result = restart_trail_trace(bvh, ray)
        assert result.max_trail_depth <= bvh.max_depth() + 1


def test_single_node_bvh():
    scene = Scene("one", scatter_mesh(1, seed=1))
    tiny = build_bvh(scene)
    ray = Ray(origin=vec3(0, 0, 20), direction=vec3(0, 0, -1))
    result = restart_trail_trace(tiny, ray)
    assert result.node_visits == 1
    assert result.restarts == 0


@pytest.mark.parametrize("stack_entries", [0, 1, 2, 4, 8, 64])
def test_short_stack_hybrid_correct(bvh, stack_entries):
    """Laine's combined scheme finds the same closest hit at any capacity."""
    from repro.trace.restart import short_stack_restart_trace

    tracer = Tracer(bvh)
    for ray in random_rays(40, seed=76):
        solo = tracer.trace(ray)
        hybrid = short_stack_restart_trace(bvh, ray, stack_entries=stack_entries)
        assert hybrid.hit_prim == solo.hit_prim
        if solo.hit:
            assert hybrid.hit_t == pytest.approx(solo.hit_t)


def test_short_stack_monotone_in_capacity(bvh):
    """More stack entries -> fewer restarts and fewer node visits."""
    from repro.trace.restart import short_stack_restart_trace

    rays = random_rays(40, seed=77)
    totals = {}
    for capacity in (0, 2, 8):
        visits = restarts = 0
        for ray in rays:
            result = short_stack_restart_trace(bvh, ray, stack_entries=capacity)
            visits += result.node_visits
            restarts += result.restarts
        totals[capacity] = (visits, restarts)
    assert totals[0][0] >= totals[2][0] >= totals[8][0]
    assert totals[0][1] >= totals[2][1] >= totals[8][1]


def test_large_stack_never_restarts(bvh):
    """A stack deeper than any pending-sibling count degenerates to DFS."""
    from repro.trace.restart import short_stack_restart_trace

    for ray in random_rays(25, seed=78):
        result = short_stack_restart_trace(bvh, ray, stack_entries=128)
        assert result.restarts == 0
