"""The batched wavefront tracer must be bit-identical to the scalar one.

``Tracer.trace_wave`` is a pure performance path: it regroups *when* each
ray's per-node work runs but never changes the arithmetic.  These tests
pin that contract on every Lumibench scene — full ``RayTrace`` equality
(step streams, hit ids, hit distances as exact floats), closest-hit and
any-hit, batched groups and fully diverged singletons alike.
"""

import numpy as np
import pytest

from repro.bvh.api import build_bvh
from repro.geometry.ray import Ray
from repro.geometry.vec import normalize
from repro.trace.events import RayKind
from repro.trace.path import _default_camera
from repro.trace.tracer import Tracer
from repro.workloads.lumibench import SCENE_NAMES, load_scene


def _wave_rays(bvh, width=6, height=6, extra_random=16, seed=7):
    """Camera rays over the whole frame plus unstructured random rays."""
    camera = _default_camera(bvh, width, height)
    rays = [
        camera.ray_for_pixel(px, py)
        for py in range(height)
        for px in range(width)
    ]
    rng = np.random.default_rng(seed)
    aabb = bvh.scene.bounds()
    lo, hi = aabb.lo, aabb.hi
    center = (lo + hi) / 2.0
    radius = float(np.linalg.norm(hi - lo)) / 2.0 + 1.0
    for _ in range(extra_random):
        origin = center + rng.uniform(-radius, radius, size=3)
        direction = normalize(rng.normal(size=3))
        rays.append(Ray(origin=origin, direction=direction))
    return rays


@pytest.mark.parametrize("scene_name", SCENE_NAMES)
def test_wave_matches_scalar_on_every_scene(scene_name):
    bvh = build_bvh(load_scene(scene_name), width=6)
    tracer = Tracer(bvh)
    rays = _wave_rays(bvh)
    ray_ids = list(range(len(rays)))
    pixels = [i % 36 for i in ray_ids]

    wave = tracer.trace_wave(rays, ray_ids, pixels, kind=RayKind.PRIMARY)
    assert len(wave) == len(rays)
    for i, ray in enumerate(rays):
        scalar = tracer.trace(
            ray, ray_id=ray_ids[i], pixel=pixels[i], kind=RayKind.PRIMARY
        )
        assert wave[i].trace == scalar.trace, (
            f"{scene_name}: ray {i} diverged from the scalar tracer"
        )
        assert wave[i].hit_prim == scalar.hit_prim
        assert wave[i].hit_t == scalar.hit_t  # exact, not approx


@pytest.mark.parametrize("scene_name", ["CRNVL", "BUNNY", "SPNZA"])
def test_wave_matches_scalar_any_hit(scene_name):
    bvh = build_bvh(load_scene(scene_name), width=6)
    tracer = Tracer(bvh)
    rays = _wave_rays(bvh, width=5, height=5, extra_random=10, seed=11)
    ray_ids = list(range(len(rays)))
    pixels = [0] * len(rays)

    wave = tracer.trace_wave(
        rays, ray_ids, pixels, kind=RayKind.SHADOW, any_hit=True
    )
    for i, ray in enumerate(rays):
        scalar = tracer.trace(
            ray, ray_id=i, pixel=0, kind=RayKind.SHADOW, any_hit=True
        )
        assert wave[i].trace == scalar.trace
        assert wave[i].hit_prim == scalar.hit_prim
        assert wave[i].hit_t == scalar.hit_t


def test_wave_of_one_and_empty_wave():
    bvh = build_bvh(load_scene("BUNNY"), width=6)
    tracer = Tracer(bvh)
    assert tracer.trace_wave([], [], []) == []
    ray = _wave_rays(bvh, width=1, height=1, extra_random=0)[0]
    wave = tracer.trace_wave([ray], [42], [3])
    scalar = tracer.trace(ray, ray_id=42, pixel=3)
    assert wave[0].trace == scalar.trace


def test_wave_results_in_input_order():
    bvh = build_bvh(load_scene("SPNZA"), width=6)
    tracer = Tracer(bvh)
    rays = _wave_rays(bvh, width=4, height=4, extra_random=8)
    ray_ids = [100 + i for i in range(len(rays))]
    pixels = [i * 2 for i in range(len(rays))]
    wave = tracer.trace_wave(rays, ray_ids, pixels)
    assert [r.trace.ray_id for r in wave] == ray_ids
    assert [r.trace.pixel for r in wave] == pixels
