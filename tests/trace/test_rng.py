"""Deterministic RNG tests."""

import numpy as np
import pytest

from repro.geometry.vec import normalize, vec3
from repro.trace.rng import DeterministicRng


def test_uniform_in_unit_interval():
    rng = DeterministicRng(1)
    for key in range(200):
        value = rng.uniform(key)
        assert 0.0 <= value < 1.0


def test_same_key_same_value():
    rng = DeterministicRng(7)
    assert rng.uniform(3, 4, 5) == rng.uniform(3, 4, 5)


def test_different_keys_differ():
    rng = DeterministicRng(7)
    values = {rng.uniform(k) for k in range(100)}
    assert len(values) == 100


def test_different_seeds_differ():
    a = DeterministicRng(1).uniform(42)
    b = DeterministicRng(2).uniform(42)
    assert a != b


def test_no_stream_state():
    """Calls are pure: order of evaluation does not matter."""
    rng = DeterministicRng(9)
    forward = [rng.uniform(k) for k in range(10)]
    backward = [rng.uniform(k) for k in reversed(range(10))]
    assert forward == list(reversed(backward))


def test_uniform_pair_components_differ():
    rng = DeterministicRng(5)
    a, b = rng.uniform_pair(1, 2)
    assert a != b


def test_uniform_roughly_uniform():
    rng = DeterministicRng(11)
    values = [rng.uniform(k) for k in range(2000)]
    assert abs(np.mean(values) - 0.5) < 0.02
    assert abs(np.std(values) - (1 / 12) ** 0.5) < 0.02


def test_cosine_hemisphere_above_surface():
    rng = DeterministicRng(13)
    normal = normalize(vec3(0.3, 0.8, -0.2))
    for key in range(100):
        direction = rng.cosine_hemisphere(normal, key)
        assert float(np.dot(direction, normal)) >= -1e-9
        assert np.linalg.norm(direction) == pytest.approx(1.0)


def test_cosine_hemisphere_cosine_weighted():
    rng = DeterministicRng(17)
    normal = vec3(0, 1, 0)
    cosines = [
        float(np.dot(rng.cosine_hemisphere(normal, k), normal))
        for k in range(3000)
    ]
    # E[cos theta] for cosine-weighted sampling is 2/3.
    assert abs(np.mean(cosines) - 2 / 3) < 0.02
