"""Stackless (escape-link) traversal: correctness and zero-stack shape."""

import numpy as np
import pytest

from repro.bvh.escape import NO_NODE
from repro.bvh.layout import assign_addresses
from repro.core.api import time_traces
from repro.errors import StackError
from repro.geometry.ray import Ray
from repro.gpu.config import GPUConfig
from repro.trace.tracer import Tracer
from repro.traversal import StacklessStrategy
from repro.traversal.stackless import EscapeTracer, StacklessState


def _fuzz_rays(bvh, count, seed):
    """Rays from random origins through random points of the scene AABB."""
    rng = np.random.default_rng(seed)
    root = bvh.nodes[bvh.root].bounds
    lo, hi = np.asarray(root.lo), np.asarray(root.hi)
    span = hi - lo
    rays = []
    for _ in range(count):
        origin = lo - span * 0.5 + rng.random(3) * span * 2.0
        target = lo + rng.random(3) * span
        direction = target - origin
        if np.linalg.norm(direction) < 1e-9:
            direction = np.array([0.0, 0.0, 1.0])
        rays.append(Ray(origin=origin, direction=direction))
    return rays


# -- hit-record equivalence with the reference tracer ---------------------


def test_closest_hits_match_reference(small_bvh):
    reference = Tracer(small_bvh)
    stackless = EscapeTracer(small_bvh)
    for ray in _fuzz_rays(small_bvh, 120, seed=11):
        want = reference.trace(ray)
        got = stackless.trace(ray)
        assert got.hit_prim == want.hit_prim
        if want.hit:
            assert got.hit_t == pytest.approx(want.hit_t)


def test_any_hit_agrees_on_occlusion(deep_bvh):
    reference = Tracer(deep_bvh)
    stackless = EscapeTracer(deep_bvh)
    for ray in _fuzz_rays(deep_bvh, 60, seed=13):
        want = reference.trace(ray, any_hit=True)
        got = stackless.trace(ray, any_hit=True)
        assert got.hit == want.hit


# -- escape-index structure ----------------------------------------------


def test_escape_index_covers_layout_dfs(small_bvh):
    links = small_bvh.escape()
    order = links.dfs_order(small_bvh.root)
    assert sorted(order) == list(range(len(small_bvh.nodes)))
    # The escape chain from the DFS-first node visits every node once:
    # exhaustive traversal (all boxes hit) is exactly the static order.
    visited = []
    current = small_bvh.root
    while current != NO_NODE:
        visited.append(current)
        child = links.first_child[current]
        current = child if child != NO_NODE else links.escape[current]
    assert visited == order


def test_root_escapes_to_termination(small_bvh):
    links = small_bvh.escape()
    assert links.escape[small_bvh.root] == NO_NODE


def test_leaves_have_no_first_child(small_bvh):
    links = small_bvh.escape()
    for index, node in enumerate(small_bvh.nodes):
        if node.is_leaf:
            assert links.first_child[index] == NO_NODE
        else:
            assert links.first_child[index] != NO_NODE


# -- derived-structure invalidation (shared with the SoA mirror) ----------


def test_assign_addresses_invalidates_escape_and_soa(small_scene):
    from repro.bvh.api import build_bvh

    bvh = build_bvh(small_scene)
    soa_before, escape_before = bvh.soa(), bvh.escape()
    # Cached until the layout changes ...
    assert bvh.soa() is soa_before
    assert bvh.escape() is escape_before
    assign_addresses(bvh)
    # ... then both derived structures rebuild together.
    assert bvh.soa() is not soa_before
    assert bvh.escape() is not escape_before


# -- the no-stack lane state ---------------------------------------------


def test_stackless_state_refuses_stack_ops():
    state = StacklessState(warp_size=32)
    assert state.has_stack is False
    assert state.depth(0) == 0
    assert state.contents(0) == []
    with pytest.raises(StackError):
        state.push(0, 0x40)
    with pytest.raises(StackError):
        state.pop(0)


# -- end-to-end: phase one emits no stack events, phase two counts none ---


def test_stackless_workload_has_no_stack_events(small_bvh):
    workload = StacklessStrategy().build_workload(
        small_bvh, width=6, height=6, spp=1, max_bounces=2, seed=5
    )
    assert workload.ray_count > 0
    for trace in workload.all_traces:
        for step in trace.steps:
            assert step.pushes == []
            assert not step.popped


def test_stackless_simulation_counts_zero_stack_traffic(small_bvh):
    strategy = StacklessStrategy()
    workload = strategy.build_workload(
        small_bvh, width=6, height=6, spp=1, max_bounces=2, seed=5
    )
    result = time_traces(
        workload.all_traces,
        config=GPUConfig(rb_stack_entries=8, sh_stack_entries=8,
                         skewed_bank_access=True),
        verify_pops=False,
        strategy=strategy,
    )
    counters = result.counters.as_dict()
    for name, value in counters.items():
        if name.startswith("stack_"):
            assert value == 0, f"{name} should be zero under stackless"
    assert result.cycles > 0
    # adapt_config returned the SH carve-out to the L1D.
    assert result.config.sh_stack_entries == 0
