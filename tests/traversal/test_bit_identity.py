"""The refactor's contract: ``strategy="sms"`` is the pre-strategy simulator.

``golden_sms.json`` pins every integer counter the simulator produced on
all 16 Table II scenes *before* the traversal-strategy subsystem existed
(captured at the same tiny resolution this suite replays).  Any drift —
one cycle, one stack op — fails here, so the strategy seam is proven to
be a pure refactor, not a behavior change.
"""

import json
from pathlib import Path

import pytest

from repro.bvh.api import build_bvh
from repro.core.api import time_traces
from repro.core.presets import baseline_config, sms_config
from repro.guard.config import GuardConfig
from repro.trace.path import generate_workload
from repro.workloads.lumibench import load_scene

GOLDEN_PATH = Path(__file__).parent / "golden_sms.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

CONFIGS = {
    "RB_8": baseline_config,
    "RB_8+SH_8+SK+RA": sms_config,
}

#: Scenes for the (more expensive) guard / fast-forward cross-checks.
CROSS_CHECK_SCENES = ("CRNVL", "SHIP", "CHSNT")


def _traces(scene_name):
    scene = load_scene(scene_name)
    bvh = build_bvh(scene)
    workload = generate_workload(
        bvh,
        width=GOLDEN["width"],
        height=GOLDEN["height"],
        spp=GOLDEN["spp"],
        max_bounces=GOLDEN["max_bounces"],
        seed=GOLDEN["seed"],
    )
    return workload.all_traces


def _int_counters(result):
    return {
        key: value
        for key, value in result.counters.as_dict().items()
        if isinstance(value, int)
    }


@pytest.mark.parametrize("scene_name", sorted(GOLDEN["scenes"]))
def test_sms_strategy_reproduces_pre_refactor_counters(scene_name):
    traces = _traces(scene_name)
    for label, make_config in CONFIGS.items():
        result = time_traces(
            traces,
            config=make_config(),
            verify_pops=False,
            strategy="sms",
        )
        assert _int_counters(result) == GOLDEN["scenes"][scene_name][label], (
            f"{scene_name}/{label}: counters drifted from the pre-strategy "
            f"golden capture"
        )


@pytest.mark.parametrize("scene_name", CROSS_CHECK_SCENES)
def test_default_strategy_is_sms(scene_name):
    """``strategy=None`` and ``strategy="sms"`` are the same simulator."""
    traces = _traces(scene_name)
    config = sms_config()
    explicit = time_traces(traces, config=config, verify_pops=False,
                           strategy="sms")
    implicit = time_traces(traces, config=config, verify_pops=False)
    assert _int_counters(explicit) == _int_counters(implicit)


@pytest.mark.parametrize("scene_name", CROSS_CHECK_SCENES)
def test_guard_and_fast_forward_preserve_identity(scene_name):
    """The golden numbers hold with the guard on and fast-forward off."""
    traces = _traces(scene_name)
    for label, make_config in CONFIGS.items():
        golden = GOLDEN["scenes"][scene_name][label]
        guarded = time_traces(
            traces,
            config=make_config(),
            verify_pops=False,
            strategy="sms",
            guard=GuardConfig(),
        )
        assert _int_counters(guarded) == golden
        stepped = time_traces(
            traces,
            config=make_config(),
            verify_pops=False,
            strategy="sms",
            fast_forward=False,
        )
        assert _int_counters(stepped) == golden
