"""Ray-reordering strategy: locality sort is a permutation, and stable."""

import pytest

from repro.errors import ConfigError, TraversalError
from repro.trace.ordering import (
    reorder_wave_by_locality,
    traversal_locality_key,
)
from repro.traversal import ReorderStrategy, StackStrategy


def _wave_ids(wave):
    return sorted(trace.ray_id for trace in wave)


def test_reorder_preserves_each_wave_as_multiset(small_bvh):
    base = StackStrategy().build_workload(small_bvh, width=6, height=6,
                                          max_bounces=2, seed=9)
    reordered = ReorderStrategy(key_depth=8).build_workload(
        small_bvh, width=6, height=6, max_bounces=2, seed=9
    )
    assert len(base.waves) == len(reordered.waves)
    for before, after in zip(base.waves, reordered.waves):
        assert _wave_ids(before) == _wave_ids(after)


def test_reorder_sorts_within_waves_by_prefix(small_workload):
    for wave in small_workload.waves:
        reordered = reorder_wave_by_locality(wave, key_depth=8)
        keys = [traversal_locality_key(t, key_depth=8) for t in reordered]
        assert keys == sorted(keys)


def test_reorder_is_stable_and_deterministic(small_workload):
    wave = small_workload.waves[0]
    first = reorder_wave_by_locality(wave, key_depth=4)
    second = reorder_wave_by_locality(wave, key_depth=4)
    assert [t.ray_id for t in first] == [t.ray_id for t in second]
    # Stability: equal keys keep their original relative order.
    key_of = {id(t): traversal_locality_key(t, key_depth=4) for t in wave}
    original_rank = {id(t): i for i, t in enumerate(wave)}
    for left, right in zip(first, first[1:]):
        if key_of[id(left)] == key_of[id(right)]:
            assert original_rank[id(left)] < original_rank[id(right)]


def test_window_limits_sort_to_segments(small_workload):
    wave = max(small_workload.waves, key=len)
    window = max(2, len(wave) // 3)
    segmented = reorder_wave_by_locality(wave, key_depth=8, window=window)
    assert _wave_ids(wave) == _wave_ids(segmented)
    # Each window-sized segment is sorted independently ...
    for start in range(0, len(segmented), window):
        segment = segmented[start:start + window]
        keys = [traversal_locality_key(t, key_depth=8) for t in segment]
        assert keys == sorted(keys)
    # ... and segments are exactly the original segments, re-sorted.
    for start in range(0, len(wave), window):
        assert _wave_ids(wave[start:start + window]) == _wave_ids(
            segmented[start:start + window]
        )


def test_negative_window_rejected(small_workload):
    with pytest.raises(TraversalError):
        reorder_wave_by_locality(small_workload.waves[0], window=-1)


def test_constructor_validation():
    with pytest.raises(ConfigError):
        ReorderStrategy(key_depth=0)
    with pytest.raises(ConfigError):
        ReorderStrategy(window=-2)


def test_trace_key_encodes_knobs():
    assert ReorderStrategy().trace_key() != ReorderStrategy(
        key_depth=2
    ).trace_key()
    assert ReorderStrategy().trace_key() != ReorderStrategy(
        window=16
    ).trace_key()
    assert ReorderStrategy(key_depth=8, window=0).trace_key() == \
        ReorderStrategy(key_depth=8, window=0).trace_key()
