"""The integrity layer observes every strategy without perturbing it."""

import pytest

from repro.core.api import time_traces
from repro.core.presets import sms_config
from repro.errors import InvariantViolationError
from repro.guard.config import GuardConfig
from repro.guard.invariants import GuardContext, GuardedStack
from repro.traversal import resolve_strategy
from repro.traversal.stackless import StacklessState


def _int_counters(result):
    return {
        key: value
        for key, value in result.counters.as_dict().items()
        if isinstance(value, int)
    }


@pytest.mark.parametrize(
    "name", ["sms", "baseline", "interwarp", "stackless", "reorder"]
)
def test_guard_is_transparent_for_every_strategy(small_bvh, name):
    strategy = resolve_strategy(name)
    workload = strategy.build_workload(
        small_bvh, width=6, height=6, spp=1, max_bounces=2, seed=5
    )
    config = sms_config()
    plain = time_traces(workload.all_traces, config=config,
                        verify_pops=False, strategy=strategy)
    guarded = time_traces(workload.all_traces, config=config,
                          verify_pops=False, strategy=strategy,
                          guard=GuardConfig())
    assert _int_counters(plain) == _int_counters(guarded)


def test_guarded_stackless_run_completes_clean(small_bvh):
    strategy = resolve_strategy("stackless")
    workload = strategy.build_workload(
        small_bvh, width=6, height=6, spp=1, max_bounces=2, seed=5
    )
    result = time_traces(workload.all_traces, config=sms_config(),
                         verify_pops=False, strategy=strategy,
                         guard=GuardConfig())
    assert result.counters.stack_global_ops == 0
    assert result.counters.stack_shared_ops == 0


def test_guard_degrades_to_structural_only_without_a_stack():
    guard = GuardedStack(StacklessState(warp_size=32), GuardContext())
    assert guard.structural_only
    guard.verify()  # zero ops, zero traffic: clean


def test_structural_guard_rejects_stack_ops():
    guard = GuardedStack(StacklessState(warp_size=32), GuardContext())
    with pytest.raises(InvariantViolationError, match="stackless"):
        guard.push(0, 0x40)
    with pytest.raises(InvariantViolationError):
        guard.pop(0)


def test_stack_backed_guard_keeps_full_checking():
    from repro.stack.factory import make_stack_model

    guard = GuardedStack(make_stack_model(sms_config()), GuardContext())
    assert not guard.structural_only
