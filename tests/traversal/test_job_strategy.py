"""Strategy is part of the job content address (cache invalidation)."""

from repro.core.presets import sms_config
from repro.runtime.job import SimulationJob
from repro.runtime.store import ResultStore
from repro.workloads.params import WorkloadParams

TINY = WorkloadParams(width=6, height=6, spp=1, max_bounces=2,
                      complex_width=6, complex_height=6, complex_spp=1)


def _job(strategy):
    return SimulationJob.from_params(
        "WKND", sms_config(), params=TINY, max_bounces=2, strategy=strategy
    )


def test_strategy_is_in_the_spec():
    job = _job("stackless")
    assert job.spec()["strategy"] == "stackless"
    assert job.strategy == "stackless"


def test_strategies_get_distinct_keys():
    keys = {name: _job(name).key() for name in
            ("sms", "baseline", "stackless", "reorder")}
    assert len(set(keys.values())) == len(keys)


def test_default_strategy_key_is_sms():
    assert _job("sms").key() == SimulationJob.from_params(
        "WKND", sms_config(), params=TINY, max_bounces=2
    ).key()


def test_describe_marks_non_default_strategies():
    assert "[stackless]" in _job("stackless").describe()
    assert "[" not in _job("sms").describe()


def test_store_never_serves_one_strategy_for_another(tmp_path):
    """The regression satellite 2 exists for: a cached sms result must
    never satisfy a stackless lookup of the same scene/config cell."""
    store = ResultStore(root=tmp_path)
    sms_job, stackless_job = _job("sms"), _job("stackless")
    result = sms_job.run()
    store.put(sms_job.key(), result, spec=sms_job.spec())
    assert store.get(sms_job.key()) is not None
    assert store.get(stackless_job.key()) is None


def test_jobs_run_their_strategy():
    sms_result = _job("sms").run()
    stackless_result = _job("stackless").run()
    # The recorded streams differ at the root: sms traces push, the
    # stackless re-trace never does (so its depth statistics are flat).
    assert sms_result.depth_stats.max_depth > 0
    assert stackless_result.depth_stats.max_depth == 0
    assert stackless_result.counters.stack_global_ops == 0
    assert stackless_result.counters.stack_shared_ops == 0
    # Stackless adapted the config: the SH carve-out is gone.
    assert stackless_result.config.sh_stack_entries == 0
    assert sms_result.config.sh_stack_entries > 0
