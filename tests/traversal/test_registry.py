"""Strategy registry semantics and per-strategy config adaptation."""

import pytest

from repro.errors import ConfigError
from repro.gpu.config import GPUConfig
from repro.traversal import (
    BaselineStrategy,
    InterWarpStrategy,
    ReorderStrategy,
    StackStrategy,
    StacklessStrategy,
    TraversalStrategy,
    available_strategies,
    register_strategy,
    resolve_strategy,
)
from repro.traversal.registry import _REGISTRY


def test_builtins_registered():
    names = available_strategies()
    for expected in ("sms", "baseline", "interwarp", "stackless", "reorder"):
        assert expected in names
    assert names == sorted(names)


def test_resolve_by_name_and_case():
    assert isinstance(resolve_strategy("sms"), StackStrategy)
    assert isinstance(resolve_strategy("STACKLESS"), StacklessStrategy)
    assert isinstance(resolve_strategy("Reorder"), ReorderStrategy)


def test_resolve_none_is_default_sms():
    strategy = resolve_strategy(None)
    assert isinstance(strategy, StackStrategy)
    assert strategy.name == "sms"


def test_resolve_instance_passthrough():
    strategy = ReorderStrategy(key_depth=3)
    assert resolve_strategy(strategy) is strategy


def test_resolve_unknown_lists_available():
    with pytest.raises(ConfigError) as excinfo:
        resolve_strategy("warp-sort")
    assert "warp-sort" in str(excinfo.value)
    assert "sms" in str(excinfo.value)


def test_register_override_last_wins():
    class Custom(StackStrategy):
        name = "sms"

    original = _REGISTRY["sms"]
    try:
        register_strategy("sms", Custom)
        assert isinstance(resolve_strategy("sms"), Custom)
    finally:
        register_strategy("sms", original)
    assert not isinstance(resolve_strategy("sms"), Custom)


def test_every_builtin_describes_itself():
    for name in available_strategies():
        strategy = resolve_strategy(name)
        assert isinstance(strategy, TraversalStrategy)
        assert strategy.name == name
        assert strategy.describe()


def test_sms_adapt_config_is_identity():
    config = GPUConfig()
    assert StackStrategy().adapt_config(config) is config


def test_baseline_strips_sms_knobs():
    config = GPUConfig(
        rb_stack_entries=8,
        sh_stack_entries=8,
        skewed_bank_access=True,
        intra_warp_realloc=True,
        inter_warp_realloc=True,
    )
    adapted = BaselineStrategy().adapt_config(config)
    assert adapted.sh_stack_entries == 0
    assert not adapted.skewed_bank_access
    assert not adapted.intra_warp_realloc
    assert not adapted.inter_warp_realloc
    assert adapted.rb_stack_entries == 8


def test_baseline_requires_register_backing():
    with pytest.raises(ConfigError):
        BaselineStrategy().adapt_config(GPUConfig(rb_stack_entries=None))


def test_interwarp_enables_sharing():
    config = GPUConfig(rb_stack_entries=8, sh_stack_entries=8)
    adapted = InterWarpStrategy().adapt_config(config)
    assert adapted.inter_warp_realloc


@pytest.mark.parametrize(
    "config",
    [
        GPUConfig(rb_stack_entries=None, sh_stack_entries=0),
        GPUConfig(rb_stack_entries=8, sh_stack_entries=0),
    ],
)
def test_interwarp_rejects_unshareable_configs(config):
    with pytest.raises(ConfigError):
        InterWarpStrategy().adapt_config(config)


def test_stackless_frees_shared_memory_carveout():
    config = GPUConfig(rb_stack_entries=8, sh_stack_entries=8,
                       skewed_bank_access=True, intra_warp_realloc=True)
    adapted = StacklessStrategy().adapt_config(config)
    assert adapted.sh_stack_entries == 0
    assert not adapted.skewed_bank_access
    # The SH carve-out returns to the L1D: capacity must not shrink.
    assert adapted.l1d_bytes >= config.l1d_bytes


def test_stackless_adapt_is_noop_when_already_bare():
    config = GPUConfig(rb_stack_entries=8, sh_stack_entries=0)
    assert StacklessStrategy().adapt_config(config) is config


def test_trace_keys_partition_phase_one():
    # Strategies that replay identical recorded traces share a key;
    # strategies that alter phase one must not.
    assert StackStrategy().trace_key() == BaselineStrategy().trace_key()
    assert StacklessStrategy().trace_key() != StackStrategy().trace_key()
    assert ReorderStrategy().trace_key() != StackStrategy().trace_key()
