"""The head-to-head comparison engine (`repro compare --strategies`)."""

import pytest

from repro.errors import ConfigError
from repro.experiments import compare_strategies
from repro.experiments.common import WorkloadCache
from repro.runtime.cache import runtime_cache
from repro.workloads.params import WorkloadParams

TINY = WorkloadParams(width=6, height=6, spp=1, max_bounces=2,
                      complex_width=6, complex_height=6, complex_spp=1)
SCENES = ("WKND", "BUNNY")


def test_run_and_render_serial():
    cache = WorkloadCache(params=TINY, scene_names=SCENES, max_bounces=2)
    comparison = compare_strategies.run(
        cache, strategies=("sms", "stackless", "reorder")
    )
    assert comparison.strategies == ["sms", "stackless", "reorder"]
    assert sorted(comparison.per_scene) == sorted(SCENES)
    for per_strategy in comparison.per_scene.values():
        assert set(per_strategy) == {"sms", "stackless", "reorder"}
        # Stackless freed the SH carve-out; sms kept it.
        assert per_strategy["stackless"].config.sh_stack_entries == 0
        assert per_strategy["sms"].config.sh_stack_entries > 0
        # Reorder replays the same architecture as sms over permuted
        # warps: identical per-scene ray population.
        assert (per_strategy["reorder"].ray_count
                == per_strategy["sms"].ray_count)

    report = compare_strategies.render(comparison)
    for scene in SCENES:
        assert f"[{scene}]" in report
    for name in ("sms", "stackless", "reorder"):
        assert name in report
    assert "aggregate over 2 scenes" in report
    assert "IPC geomean vs sms" in report


def test_run_through_the_runtime_hits_the_store(tmp_path):
    cache = runtime_cache(params=TINY, scene_names=("WKND",), jobs=1,
                          cache_dir=tmp_path)
    first = compare_strategies.run(cache, strategies=("sms", "stackless"))
    assert cache.metrics.simulated == 2
    assert cache.metrics.cache_hits == 0
    # Second sweep over the same cells: pure store hits.
    cache2 = runtime_cache(params=TINY, scene_names=("WKND",), jobs=1,
                           cache_dir=tmp_path)
    second = compare_strategies.run(cache2, strategies=("sms", "stackless"))
    assert cache2.metrics.cache_hits == 2
    assert cache2.metrics.simulated == 0
    for name in ("sms", "stackless"):
        assert (second.per_scene["WKND"][name].counters.as_dict()
                == first.per_scene["WKND"][name].counters.as_dict())


def test_unknown_strategy_fails_before_tracing():
    cache = WorkloadCache(params=TINY, scene_names=("WKND",), max_bounces=2)
    with pytest.raises(ConfigError):
        compare_strategies.run(cache, strategies=("sms", "warp-sort"))


def test_empty_selection_falls_back_to_default():
    cache = WorkloadCache(params=TINY, scene_names=("WKND",), max_bounces=2)
    comparison = compare_strategies.run(cache, strategies=())
    assert comparison.strategies == list(compare_strategies.DEFAULT_STRATEGIES)
