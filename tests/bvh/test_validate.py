"""Validator tests: each must catch deliberately corrupted trees."""

import pytest

from repro.bvh.api import build_bvh
from repro.bvh.builder import build_binary_bvh
from repro.bvh.validate import validate_binary, validate_wide
from repro.errors import BVHError
from repro.geometry.vec import vec3
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene


@pytest.fixture
def binary():
    return build_binary_bvh(Scene("clutter", scatter_mesh(200, seed=51)))


@pytest.fixture
def wide():
    return build_bvh(Scene("clutter", scatter_mesh(200, seed=51)))


def test_valid_binary_passes(binary):
    validate_binary(binary)


def test_valid_wide_passes(wide):
    validate_wide(wide)


def test_binary_detects_escaping_child_bounds(binary):
    child = binary.nodes[binary.root].left
    binary.nodes[child].bounds.hi[0] += 100.0
    with pytest.raises(BVHError):
        validate_binary(binary)


def test_binary_detects_duplicate_prims(binary):
    binary.prim_order[1] = binary.prim_order[0]
    with pytest.raises(BVHError):
        validate_binary(binary)


def test_wide_detects_escaping_child_bounds(wide):
    child = wide.nodes[wide.root].children[0]
    wide.nodes[child].bounds.lo[2] -= 50.0
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_duplicate_prims(wide):
    leaves = [n for n in wide.nodes if n.is_leaf]
    leaves[1].prim_ids[0] = leaves[0].prim_ids[0]
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_missing_prims(wide):
    leaf = next(n for n in wide.nodes if n.is_leaf and len(n.prim_ids) > 1)
    leaf.prim_ids.pop()
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_overwide_node(wide):
    node = wide.nodes[wide.root]
    node.children.extend([node.children[0]] * 10)
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_bad_depth(wide):
    child = wide.nodes[wide.root].children[0]
    wide.nodes[child].depth = 5
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_duplicate_addresses(wide):
    child = wide.nodes[wide.root].children[0]
    wide.nodes[child].address = wide.nodes[wide.root].address
    with pytest.raises(BVHError):
        validate_wide(wide)


def test_wide_detects_empty_leaf(wide):
    leaf = next(n for n in wide.nodes if n.is_leaf)
    leaf.prim_ids.clear()
    with pytest.raises(BVHError):
        validate_wide(wide)
