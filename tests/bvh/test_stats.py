"""BVH statistics tests."""

import pytest

from repro.bvh.api import build_bvh
from repro.bvh.stats import compute_stats
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene


@pytest.fixture(scope="module")
def bvh():
    return build_bvh(Scene("clutter", scatter_mesh(400, seed=41)))


@pytest.fixture(scope="module")
def stats(bvh):
    return compute_stats(bvh)


def test_node_partition(stats):
    assert stats.internal_count + stats.leaf_count == stats.node_count


def test_triangle_count_matches_scene(bvh, stats):
    assert stats.triangle_count == bvh.scene.triangle_count


def test_max_depth_matches(bvh, stats):
    assert stats.max_depth == bvh.max_depth()


def test_avg_leaf_prims_in_range(stats):
    assert 1.0 <= stats.avg_leaf_prims <= 4.0


def test_children_bounded_by_width(bvh, stats):
    assert stats.max_children <= bvh.width
    assert 2.0 <= stats.avg_children <= bvh.width


def test_total_bytes_positive(stats):
    assert stats.total_bytes > 0
    assert stats.megabytes == pytest.approx(stats.total_bytes / 1024 / 1024)


def test_leaf_ratio_in_unit_interval(stats):
    assert 0.0 < stats.leaf_ratio < 1.0


def test_single_node_stats():
    bvh = build_bvh(Scene("one", scatter_mesh(1, seed=1)))
    stats = compute_stats(bvh)
    assert stats.node_count == 1
    assert stats.leaf_count == 1
    assert stats.internal_count == 0
    assert stats.max_children == 0
    assert stats.avg_children == 0.0
    assert stats.leaf_ratio == 1.0
