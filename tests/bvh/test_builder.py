"""Binary BVH builder tests."""

import numpy as np
import pytest

from repro.bvh.builder import build_binary_bvh
from repro.bvh.validate import validate_binary
from repro.errors import BVHError
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene


@pytest.fixture(scope="module")
def cluttered_scene():
    return Scene("clutter", scatter_mesh(500, seed=11))


def test_empty_scene_raises():
    with pytest.raises(BVHError):
        build_binary_bvh(Scene("empty", np.zeros((0, 3, 3))))


def test_bad_leaf_size_raises(cluttered_scene):
    with pytest.raises(BVHError):
        build_binary_bvh(cluttered_scene, max_leaf_size=0)


def test_bad_strategy_raises(cluttered_scene):
    with pytest.raises(BVHError):
        build_binary_bvh(cluttered_scene, strategy="bogus")


def test_single_triangle_scene():
    scene = Scene("one", scatter_mesh(1, seed=1))
    bvh = build_binary_bvh(scene)
    assert bvh.node_count == 1
    assert bvh.nodes[0].is_leaf
    assert list(bvh.leaf_prims(0)) == [0]


@pytest.mark.parametrize("strategy", ["median", "sah"])
def test_valid_tree(cluttered_scene, strategy):
    bvh = build_binary_bvh(cluttered_scene, strategy=strategy)
    validate_binary(bvh)


@pytest.mark.parametrize("max_leaf", [1, 2, 4, 8])
def test_leaf_size_respected(cluttered_scene, max_leaf):
    bvh = build_binary_bvh(cluttered_scene, max_leaf_size=max_leaf)
    for i, node in enumerate(bvh.nodes):
        if node.is_leaf:
            assert node.prim_count <= max_leaf


def test_all_primitives_reachable(cluttered_scene):
    bvh = build_binary_bvh(cluttered_scene)
    assert sorted(bvh.prim_order) == list(range(cluttered_scene.triangle_count))


def test_root_bounds_cover_scene(cluttered_scene):
    bvh = build_binary_bvh(cluttered_scene)
    scene_bounds = cluttered_scene.bounds()
    root = bvh.nodes[bvh.root]
    assert root.bounds.contains_box(scene_bounds)


def test_internal_nodes_have_two_children(cluttered_scene):
    bvh = build_binary_bvh(cluttered_scene)
    for node in bvh.nodes:
        if not node.is_leaf:
            assert node.left >= 0 and node.right >= 0


def test_identical_centroids_terminate():
    # All triangles at the same position: splits degenerate, the builder
    # must fall back to half-splits and still terminate.
    verts = np.tile(
        np.array([[[0, 0, 0], [1, 0, 0], [0, 1, 0]]], dtype=float), (20, 1, 1)
    )
    scene = Scene("coincident", verts)
    bvh = build_binary_bvh(scene, max_leaf_size=2)
    validate_binary(bvh)


def test_leaf_prims_on_internal_raises(cluttered_scene):
    bvh = build_binary_bvh(cluttered_scene)
    internal = next(i for i, n in enumerate(bvh.nodes) if not n.is_leaf)
    with pytest.raises(BVHError):
        bvh.leaf_prims(internal)


def test_sah_not_worse_than_median_node_count(cluttered_scene):
    median = build_binary_bvh(cluttered_scene, strategy="median")
    sah = build_binary_bvh(cluttered_scene, strategy="sah")
    # Same primitive count => comparable node counts (within 2x).
    assert sah.node_count <= 2 * median.node_count


def test_deterministic_build(cluttered_scene):
    a = build_binary_bvh(cluttered_scene)
    b = build_binary_bvh(cluttered_scene)
    assert a.node_count == b.node_count
    assert np.array_equal(a.prim_order, b.prim_order)
