"""Memory layout tests."""

import pytest

from repro.bvh.api import build_bvh
from repro.bvh.layout import (
    BVH_BASE_ADDRESS,
    NODE_ALIGNMENT,
    assign_addresses,
    node_size_bytes,
)
from repro.errors import BVHError
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene


@pytest.fixture(scope="module")
def bvh():
    return build_bvh(Scene("clutter", scatter_mesh(300, seed=31)))


def test_node_size_alignment():
    for children in range(7):
        for prims in range(5):
            size = node_size_bytes(children, prims)
            assert size % NODE_ALIGNMENT == 0
            assert size > 0


def test_node_size_monotone_in_children():
    assert node_size_bytes(6, 0) > node_size_bytes(2, 0)


def test_all_nodes_addressed(bvh):
    assert len(bvh.address_to_node) == bvh.node_count


def test_addresses_unique(bvh):
    addresses = [n.address for n in bvh.nodes]
    assert len(set(addresses)) == len(addresses)


def test_addresses_non_overlapping(bvh):
    spans = sorted((n.address, n.address + n.size_bytes) for n in bvh.nodes)
    for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert end_a <= start_b


def test_root_at_base(bvh):
    assert bvh.nodes[bvh.root].address == BVH_BASE_ADDRESS


def test_total_bytes_equals_span(bvh):
    end = max(n.address + n.size_bytes for n in bvh.nodes)
    assert bvh.total_bytes == end - BVH_BASE_ADDRESS


def test_lookup_roundtrip(bvh):
    for node in bvh.nodes:
        assert bvh.node_at_address(node.address) is node


def test_lookup_unknown_raises(bvh):
    with pytest.raises(BVHError):
        bvh.node_at_address(BVH_BASE_ADDRESS - 64)


def test_layout_summary(bvh):
    layout = assign_addresses(bvh)
    assert layout.node_count == bvh.node_count
    assert layout.total_bytes == bvh.total_bytes
    assert layout.megabytes == pytest.approx(bvh.total_bytes / 1024 / 1024)


def test_children_contiguous_after_parent(bvh):
    # Depth-first layout: the first child immediately follows its parent.
    for node in bvh.nodes:
        if node.children:
            first_child = bvh.nodes[node.children[0]]
            assert first_child.address == node.address + node.size_bytes
