"""Wide-BVH collapse tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.api import build_bvh
from repro.bvh.builder import build_binary_bvh
from repro.bvh.validate import validate_wide
from repro.bvh.wide import collapse_to_wide
from repro.errors import BVHError
from repro.scene.generators import scatter_mesh
from repro.scene.scene import Scene


@pytest.fixture(scope="module")
def scene():
    return Scene("clutter", scatter_mesh(400, seed=21))


@pytest.fixture(scope="module")
def binary(scene):
    return build_binary_bvh(scene)


def test_invalid_width_raises(binary):
    with pytest.raises(BVHError):
        collapse_to_wide(binary, width=1)


@pytest.mark.parametrize("width", [2, 4, 6, 8])
def test_width_respected(binary, width):
    wide = collapse_to_wide(binary, width=width)
    for node in wide.nodes:
        assert node.child_count <= width
    validate_wide_no_addresses(wide)


def validate_wide_no_addresses(wide):
    """Structural checks that don't need the layout pass."""
    seen = set()
    stack = [wide.root]
    while stack:
        node = wide.nodes[stack.pop()]
        for prim in node.prim_ids:
            assert prim not in seen
            seen.add(prim)
        stack.extend(node.children)
    assert seen == set(range(wide.scene.triangle_count))


def test_wider_bvh_has_fewer_nodes(binary):
    narrow = collapse_to_wide(binary, width=2)
    wide = collapse_to_wide(binary, width=8)
    assert wide.node_count <= narrow.node_count


def test_wider_bvh_is_shallower(binary):
    narrow = collapse_to_wide(binary, width=2)
    wide = collapse_to_wide(binary, width=8)
    assert wide.max_depth() <= narrow.max_depth()


def test_depth_annotations_consistent(binary):
    wide = collapse_to_wide(binary)
    for node in wide.nodes:
        for child in node.children:
            assert wide.nodes[child].depth == node.depth + 1


def test_child_arrays_match_children(binary):
    wide = collapse_to_wide(binary)
    for node in wide.nodes:
        assert wide.child_los[node.index].shape == (node.child_count, 3)
        for slot, child in enumerate(node.children):
            assert np.allclose(
                wide.child_los[node.index][slot], wide.nodes[child].bounds.lo
            )


def test_single_triangle_collapse():
    scene = Scene("one", scatter_mesh(1, seed=1))
    wide = build_bvh(scene)
    assert wide.node_count == 1
    assert wide.nodes[0].is_leaf


def test_leaf_prims_preserved(binary, scene):
    wide = collapse_to_wide(binary)
    total = sum(len(n.prim_ids) for n in wide.nodes)
    assert total == scene.triangle_count


def test_internal_nodes_have_multiple_children(binary):
    wide = collapse_to_wide(binary, width=6)
    for node in wide.nodes:
        if not node.is_leaf and node.index != wide.root:
            assert node.child_count >= 1
    root = wide.nodes[wide.root]
    assert root.child_count >= 2


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=60),
    width=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_collapse_valid_for_random_scenes(count, width, seed):
    scene = Scene("rand", scatter_mesh(count, seed=seed))
    wide = build_bvh(scene, width=width)
    validate_wide(wide)
