"""Documentation generation and repo-doc consistency tests."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent


def test_api_doc_generator_runs(tmp_path, monkeypatch):
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr
    api = (REPO / "docs" / "api.md").read_text()
    assert "# API reference" in api
    for module in ("repro.stack.sms", "repro.gpu.rt_unit", "repro.core.api"):
        assert f"## `{module}`" in api


def test_required_docs_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/architecture.md"):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, name


def test_design_doc_covers_every_figure():
    design = (REPO / "DESIGN.md").read_text()
    for artifact in ("Table I", "Table II", "Fig. 4", "Fig. 5", "Fig. 6",
                     "Fig. 8", "Fig. 10", "Fig. 13", "Fig. 14", "Fig. 15"):
        assert artifact in design, artifact


def test_experiments_doc_records_headline():
    text = (REPO / "EXPERIMENTS.md").read_text()
    assert "23.2%" in text  # the paper's headline number
    assert "Deviations" in text


def test_every_benchmark_module_has_paper_anchor():
    for bench in (REPO / "benchmarks").glob("test_fig*.py"):
        text = bench.read_text()
        assert "Paper" in text or "paper" in text, bench.name
